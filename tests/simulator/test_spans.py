"""Tests for the span tracing subsystem (repro.simulator.spans)."""

import pytest

from repro.errors import SimulationError
from repro.mpi.comm import MpiContext
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine
from repro.simulator.requests import ComputeRequest
from repro.simulator.spans import (
    Span,
    SpanCloseRequest,
    SpanOpenRequest,
    phase_of,
)

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _run(*programs):
    return Engine(HomogeneousNetwork(len(programs), PARAMS)).run(list(programs))


class TestSpanTree:
    def test_nesting(self):
        def prog():
            yield SpanOpenRequest("outer")
            yield ComputeRequest(1.0)
            yield SpanOpenRequest("inner")
            yield ComputeRequest(2.0)
            yield SpanCloseRequest()
            yield SpanOpenRequest("inner")
            yield ComputeRequest(3.0)
            yield SpanCloseRequest()
            yield SpanCloseRequest()

        res = _run(prog())
        assert len(res.spans) == 1
        outer = res.spans[0]
        assert outer.name == "outer"
        assert outer.rank == 0
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.start == 0.0
        assert outer.end == pytest.approx(6.0)
        assert outer.children[0].start == pytest.approx(1.0)
        assert outer.children[0].end == pytest.approx(3.0)
        assert outer.children[1].duration == pytest.approx(3.0)

    def test_self_time_subtracts_children(self):
        def prog():
            yield SpanOpenRequest("outer")
            yield ComputeRequest(1.0)
            yield SpanOpenRequest("inner")
            yield ComputeRequest(2.0)
            yield SpanCloseRequest()
            yield SpanCloseRequest()

        res = _run(prog())
        assert res.spans[0].self_time == pytest.approx(1.0)

    def test_spans_cost_zero_virtual_time(self):
        def plain():
            yield ComputeRequest(1.0)

        def spanned():
            for _ in range(50):
                yield SpanOpenRequest("phase")
                yield SpanCloseRequest()
            yield ComputeRequest(1.0)

        assert _run(plain()).total_time == _run(spanned()).total_time

    def test_attrs_merged_at_close(self):
        def prog():
            yield SpanOpenRequest("s", {"step": 3})
            yield ComputeRequest(1.0)
            yield SpanCloseRequest({"nbytes": 64})

        span = _run(prog()).spans[0]
        assert span.attrs == {"step": 3, "nbytes": 64}

    def test_unbalanced_open_force_closed_at_rank_end(self):
        def prog():
            yield SpanOpenRequest("leaked")
            yield ComputeRequest(2.5)

        span = _run(prog()).spans[0]
        assert span.end == pytest.approx(2.5)

    def test_close_without_open_raises(self):
        def prog():
            yield SpanCloseRequest()

        with pytest.raises(SimulationError, match="none is open"):
            _run(prog())

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            SpanOpenRequest("")

    def test_walk_and_find(self):
        inner = Span("b", 0, 1.0, 2.0)
        outer = Span("a", 0, 0.0, 3.0, children=[inner])
        assert [s.name for s in outer.walk()] == ["a", "b"]
        assert list(outer.find("b")) == [inner]

    def test_spans_for_and_iter(self):
        def prog(name):
            def gen():
                yield SpanOpenRequest(name)
                yield ComputeRequest(1.0)
                yield SpanCloseRequest()
            return gen()

        res = _run(prog("zero"), prog("one"))
        assert [s.name for s in res.spans_for(1)] == ["one"]
        assert sorted(s.name for s in res.iter_spans()) == ["one", "zero"]

    def test_phase_of(self):
        assert phase_of("bcast.inter/coll.bcast") == "bcast.inter"
        assert phase_of("gemm") == "gemm"
        assert phase_of(None) is None


class TestContextHelpers:
    def test_span_helpers_noop_when_tracing_off(self):
        ctx = MpiContext(0, 1)
        assert list(ctx.span("x", step=1)) == []
        assert list(ctx.end_span()) == []

    def test_span_helpers_emit_when_tracing_on(self):
        ctx = MpiContext(0, 1, trace=True)
        reqs = list(ctx.span("x", step=1))
        assert len(reqs) == 1
        assert isinstance(reqs[0], SpanOpenRequest)
        assert reqs[0].attrs == {"step": 1}
        assert isinstance(list(ctx.end_span())[0], SpanCloseRequest)

    def test_in_span_wraps_generator(self):
        ctx = MpiContext(0, 1, trace=True)

        def prog():
            result = yield from ctx.in_span(
                "work", ctx.compute(1.0), step=0
            )
            return result

        res = _run(prog())
        assert [s.name for s in res.spans] == ["work"]
        assert res.spans[0].duration == pytest.approx(1.0)


class TestCollectiveSelfAnnotation:
    def _bcast_run(self, trace):
        def program(ctx):
            def gen():
                result = yield from ctx.world.bcast(
                    b"x" * 1024 if ctx.rank == 0 else None, root=0
                )
                return result
            return gen()

        from repro.simulator.runtime import run_spmd

        return run_spmd(program, 4, params=PARAMS, trace=trace)

    def test_bcast_span_attrs(self):
        res = self._bcast_run(trace=True)
        spans = [s for s in res.iter_spans() if s.name == "coll.bcast"]
        assert len(spans) == 4  # one per rank
        for span in spans:
            assert span.attrs["algorithm"] == "binomial"
            assert span.attrs["comm_size"] == 4
            assert span.attrs["root"] == 0
            assert span.attrs["nbytes"] == 1024

    def test_transfers_tagged_with_sender_span(self):
        res = self._bcast_run(trace=True)
        assert res.trace, "tracing should record transfers"
        assert all(rec.span == "coll.bcast" for rec in res.trace)

    def test_untraced_run_has_no_spans(self):
        res = self._bcast_run(trace=False)
        assert res.spans == []

    def test_tracing_does_not_change_timing(self):
        on = self._bcast_run(trace=True)
        off = self._bcast_run(trace=False)
        assert on.total_time == off.total_time
        assert on.comm_time == off.comm_time


class TestZeroOverheadBitIdentity:
    """Traced and untraced algorithm runs must agree bit-for-bit."""

    def test_hsumma_bit_identical(self):
        from repro.core.hsumma import run_hsumma
        from repro.payloads import PhantomArray

        A, B = PhantomArray((256, 256)), PhantomArray((256, 256))
        kwargs = dict(grid=(4, 4), groups=4, outer_block=32, gamma=5e-9)
        _, on = run_hsumma(A, B, trace=True, **kwargs)
        _, off = run_hsumma(A, B, **kwargs)
        for a, b in zip(on.stats, off.stats):
            assert a.clock == b.clock
            assert a.comm_time == b.comm_time
            assert a.compute_time == b.compute_time
            assert a.messages_sent == b.messages_sent
            assert a.bytes_sent == b.bytes_sent
        assert off.spans == [] and off.trace == []
        assert on.spans and on.trace

    def test_summa_bit_identical(self):
        from repro.core.summa import run_summa
        from repro.payloads import PhantomArray

        A, B = PhantomArray((256, 256)), PhantomArray((256, 256))
        kwargs = dict(grid=(4, 4), block=32, gamma=5e-9)
        _, on = run_summa(A, B, trace=True, **kwargs)
        _, off = run_summa(A, B, **kwargs)
        for a, b in zip(on.stats, off.stats):
            assert a.clock == b.clock
            assert a.comm_time == b.comm_time
            assert a.compute_time == b.compute_time
