"""Tests for the eager-protocol engine mode."""

import numpy as np
import pytest

from repro.errors import DeadlockError, SimulationError
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine
from repro.simulator.requests import ComputeRequest, RecvRequest, SendRequest

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _engine(n: int, **kw) -> Engine:
    return Engine(HomogeneousNetwork(n, PARAMS), **kw)


def _exchange_programs(nbytes: int):
    """Both ranks send first, then receive — deadlocks under rendezvous."""

    def a():
        yield SendRequest(1, 0, b"x" * nbytes)
        got = yield RecvRequest(1, 0)
        return got

    def b():
        yield SendRequest(0, 0, b"y" * nbytes)
        got = yield RecvRequest(0, 0)
        return got

    return [a(), b()]


class TestEagerSemantics:
    def test_send_send_deadlock_under_rendezvous(self):
        with pytest.raises(DeadlockError):
            _engine(2).run(_exchange_programs(100))

    def test_eager_avoids_deadlock(self):
        res = _engine(2, eager_threshold=1024).run(_exchange_programs(100))
        assert res.return_values == [b"y" * 100, b"x" * 100]

    def test_large_messages_still_rendezvous(self):
        with pytest.raises(DeadlockError):
            _engine(2, eager_threshold=10).run(_exchange_programs(100))

    def test_eager_sender_not_blocked_by_late_receiver(self):
        def sender():
            yield SendRequest(1, 0, b"x" * 8)
            yield ComputeRequest(0.0)
            return "sent"

        def receiver():
            yield ComputeRequest(1.0)
            got = yield RecvRequest(0, 0)
            return got

        res = _engine(2, eager_threshold=64).run([sender(), receiver()])
        # The sender finished at the wire time, far before t=1.0.
        assert res.stats[0].clock == pytest.approx(PARAMS.transfer_time(8))
        # The receiver got the buffered message right after its compute.
        assert res.stats[1].clock == pytest.approx(1.0)
        assert res.return_values[1] == b"x" * 8

    def test_arrival_time_still_respected(self):
        """An eagerly sent message cannot be received before it arrives."""

        def sender():
            yield ComputeRequest(0.5)
            yield SendRequest(1, 0, b"z" * 8)

        def receiver():
            got = yield RecvRequest(0, 0)
            return got

        res = _engine(2, eager_threshold=64).run([sender(), receiver()])
        assert res.stats[1].clock == pytest.approx(
            0.5 + PARAMS.transfer_time(8)
        )

    def test_fifo_order_mixed_eager_and_rendezvous(self):
        """A small (eager) then large (rendezvous) send on one channel
        must still be received in order."""

        def sender():
            yield SendRequest(1, 0, b"s")          # eager
            yield SendRequest(1, 0, b"L" * 4096)   # rendezvous

        def receiver():
            first = yield RecvRequest(0, 0)
            second = yield RecvRequest(0, 0)
            return (first, second)

        res = _engine(2, eager_threshold=64).run([sender(), receiver()])
        assert res.return_values[1] == (b"s", b"L" * 4096)

    def test_message_stats_counted_once(self):
        def sender():
            yield SendRequest(1, 0, b"abc")

        def receiver():
            yield RecvRequest(0, 0)

        res = _engine(2, eager_threshold=64).run([sender(), receiver()])
        assert res.stats[0].messages_sent == 1
        assert res.stats[0].bytes_sent == 3

    def test_negative_threshold_rejected(self):
        with pytest.raises(SimulationError):
            _engine(2, eager_threshold=-1)

    def test_collectives_work_under_eager(self):
        from repro.simulator import run_spmd

        def prog(ctx):
            data = np.arange(16.0) if ctx.rank == 0 else None
            data = yield from ctx.world.bcast(data, root=0)
            total = yield from ctx.world.allreduce(float(ctx.rank))
            return (data.sum(), total)

        res = run_spmd(prog, 8, params=PARAMS, eager_threshold=1 << 16)
        for dsum, total in res.return_values:
            assert dsum == pytest.approx(120.0)
            assert total == pytest.approx(28.0)

    def test_matmul_correct_under_eager(self, rng):
        """End to end: eager buffering must not corrupt SUMMA."""
        from repro.network.homogeneous import HomogeneousNetwork

        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        net = HomogeneousNetwork(16, PARAMS)
        # run_summa drives its own engine; build one manually instead.
        from repro.blocks.dmatrix import DistMatrix
        from repro.core.summa import SummaConfig, summa_program
        from repro.mpi.comm import MpiContext

        cfg = SummaConfig(m=n, l=n, n=n, s=4, t=4, block=8)
        da = DistMatrix.from_global(A, 4, 4)
        db = DistMatrix.from_global(B, 4, 4)
        programs = [
            summa_program(MpiContext(r, 16), da.tile(*divmod(r, 4)),
                          db.tile(*divmod(r, 4)), cfg)
            for r in range(16)
        ]
        sim = Engine(net, eager_threshold=1 << 20).run(programs)
        tiles = {divmod(r, 4): sim.return_values[r] for r in range(16)}
        C = da.dist.assemble(tiles)  # C shares A's distribution shape here
        assert np.max(np.abs(C - A @ B)) < 1e-10
