"""The macro backend's collapse report surfaces on ``SimResult`` and,
for verified runs, in the verdict meta (and hence the verify CLI)."""

from repro.core.summa import run_summa
from repro.payloads import PhantomArray


def _run(**kwargs):
    a = PhantomArray((256, 256))
    b = PhantomArray((256, 256))
    _, sim = run_summa(a, b, grid=(4, 4), block=64, **kwargs)
    return sim


def test_macro_run_reports_collapsed_mode():
    sim = _run(backend="macro")
    assert sim.collapse == {"mode": "collapsed", "probed": 7, "ranks": 16}


def test_contention_forces_per_rank_with_reason():
    sim = _run(backend="macro", contention=True)
    assert sim.collapse == {"mode": "per-rank",
                            "reason": "contention modelling enabled"}


def test_tracing_forces_per_rank_with_reason():
    sim = _run(backend="macro", trace=True)
    assert sim.collapse == {"mode": "per-rank",
                            "reason": "transfer tracing enabled"}


def test_des_backend_has_no_collapse_report():
    assert _run(backend="des").collapse is None
    assert _run().collapse is None


def test_verified_macro_run_carries_report_in_verdict_meta():
    # The recorder must observe every rank, so a verified macro run
    # steps per rank — and says so, on the result and in the verdict.
    sim = _run(backend="macro", verify=True)
    assert sim.collapse == {"mode": "per-rank",
                            "reason": "run_with_factory not used"}
    assert sim.verdict is not None
    assert sim.verdict.meta["collapse"] == sim.collapse
    # to_dict is what the verify CLI serialises.
    assert sim.verdict.to_dict()["meta"]["collapse"] == sim.collapse


def test_verified_des_run_has_no_collapse_meta():
    sim = _run(verify=True)
    assert sim.collapse is None
    assert "collapse" not in sim.verdict.meta
