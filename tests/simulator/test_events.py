"""Unit tests for the event queue."""

from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while q:
            _, cb = q.pop()
            cb()
        assert order == ["a", "b", "c"]

    def test_fifo_within_equal_time(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, lambda i=i: order.append(i))
        while q:
            q.pop()[1]()
        assert order == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(0.0, lambda: None)
        assert q
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_pop_returns_time(self):
        q = EventQueue()
        q.push(7.5, lambda: "x")
        t, cb = q.pop()
        assert t == 7.5
        assert cb() == "x"
