"""Unit tests for the event queue."""

from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.push(2.0, order.append, ("b",))
        q.push(1.0, order.append, ("a",))
        q.push(3.0, order.append, ("c",))
        while q:
            _, fn, args = q.pop()
            fn(*args)
        assert order == ["a", "b", "c"]

    def test_fifo_within_equal_time(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, order.append, (i,))
        while q:
            _, fn, args = q.pop()
            fn(*args)
        assert order == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(0.0, lambda: None)
        assert q
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_pop_returns_time(self):
        q = EventQueue()
        q.push(7.5, lambda: "x")
        t, fn, args = q.pop()
        assert t == 7.5
        assert fn(*args) == "x"

    def test_pop_batch_groups_equal_times(self):
        q = EventQueue()
        for i in range(3):
            q.push(1.0, str, (i,))
        q.push(2.0, str, (99,))
        t, batch = q.pop_batch()
        assert t == 1.0
        assert [args for _, _, _, args in batch] == [(0,), (1,), (2,)]
        t, batch = q.pop_batch()
        assert t == 2.0
        assert [args for _, _, _, args in batch] == [(99,)]
        assert not q

    def test_pop_batch_excludes_events_pushed_mid_batch(self):
        """Same-time events pushed while a batch runs land in the next
        batch — exactly the order one-at-a-time pops would give."""
        q = EventQueue()
        order = []
        q.push(1.0, order.append, ("first",))
        t, batch = q.pop_batch()
        assert len(batch) == 1
        q.push(1.0, order.append, ("second",))  # same virtual time
        for _, _, fn, args in batch:
            fn(*args)
        t2, batch2 = q.pop_batch()
        assert t2 == 1.0
        for _, _, fn, args in batch2:
            fn(*args)
        assert order == ["first", "second"]

    def test_sequence_is_plain_int(self):
        """The tie-break is an int counter (no itertools.count): entries
        remain comparable and FIFO across mixed pushes."""
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(1.0, lambda: None)
        assert q._seq == 2
        first = q.pop()
        second = q.pop()
        assert first[0] == second[0] == 1.0
