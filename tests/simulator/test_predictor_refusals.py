"""Every predictor refusal names the offending feature and suggests a
fallback backend — one test per refusal branch.

The contract (``repro.simulator.predictor._refuse``): the message
contains ``backend='predictor' cannot price``, the feature name in
quotes, and a ``fallback: use backend=...`` clause naming a backend
that supports the feature.
"""


import numpy as np
import pytest

from repro.core.cyclic import run_cyclic
from repro.core.summa import run_summa
from repro.errors import ConfigurationError
from repro.payloads import PhantomArray
from repro.simulator.predictor import PredictorBackend, _require_predictable
from repro.verify import VerifyOptions


def _phantoms(n=64):
    return PhantomArray((n, n)), PhantomArray((n, n))


def _refusal(excinfo, feature, fallback_fragment):
    msg = str(excinfo.value)
    assert "backend='predictor' cannot price" in msg
    assert f"'{feature}'" in msg
    assert "fallback: use" in msg
    assert fallback_fragment in msg
    return msg


class TestRunnerRefusals:
    def test_concrete_data(self):
        A = np.ones((64, 64))
        B = np.ones((64, 64))
        with pytest.raises(ConfigurationError) as exc:
            run_summa(A, B, grid=(2, 2), block=16, backend="predictor")
        msg = _refusal(exc, "concrete data", "backend='des'")
        assert "Phantom" in msg  # tells the caller the scale-mode fix

    def test_fault_injection(self):
        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_summa(A, B, grid=(2, 2), block=16, backend="predictor",
                      faults="kill(rank=1,t=0.5)")
        _refusal(exc, "fault injection", "backend='des'")

    def test_verify(self):
        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_summa(A, B, grid=(2, 2), block=16, backend="predictor",
                      verify=VerifyOptions())
        _refusal(exc, "verify", "backend='des'")

    def test_contention(self):
        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_summa(A, B, grid=(2, 2), block=16, backend="predictor",
                      contention=True)
        _refusal(exc, "contention", "backend='des'")

    def test_trace(self):
        with pytest.raises(ConfigurationError) as exc:
            _require_predictable("summa", phantom=True, faults=None,
                                 verify=None, contention=False, trace=True)
        _refusal(exc, "trace", "backend='des'")

    def test_overlap(self):
        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_cyclic(A, B, grid=(2, 2), nb=16, backend="predictor",
                       overlap=True)
        msg = _refusal(exc, "overlap", "backend='des'")
        assert "macro" in msg


class TestPipelinedBcastRefusals:
    """The phase chain prices collectives bulk-synchronously, so every
    segmented-family algorithm is refused by name — one test per new
    algorithm — rather than silently mis-priced at its s=1 shape."""

    @pytest.mark.parametrize("algorithm",
                             ["segmented", "fourcolor", "hypersystolic"])
    def test_summa_refuses_each_new_algorithm(self, algorithm):
        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_summa(A, B, grid=(2, 2), block=16, backend="predictor",
                      bcast=algorithm)
        msg = _refusal(exc, f"pipelined broadcast {algorithm}",
                       "backend='macro'")
        assert "stage overlap" in msg

    @pytest.mark.parametrize("algorithm",
                             ["segmented", "fourcolor", "hypersystolic"])
    def test_hsumma_refuses_each_new_algorithm(self, algorithm):
        from repro.core.hsumma import run_hsumma

        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_hsumma(A, B, grid=(4, 4), groups=4, outer_block=16,
                       backend="predictor", inner_bcast=algorithm)
        _refusal(exc, f"pipelined broadcast {algorithm}",
                 "backend='macro'")

    def test_cyclic_refuses_pipelined_family(self):
        from repro.mpi.comm import CollectiveOptions

        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_cyclic(A, B, grid=(2, 2), nb=16, backend="predictor",
                       options=CollectiveOptions(bcast="hypersystolic"))
        _refusal(exc, "pipelined broadcast hypersystolic",
                 "backend='macro'")

    def test_legacy_pipelined_chain_is_grandfathered(self):
        """The plain pipelined chain predates the refusal policy and
        keeps its bulk-synchronous closed-form price."""
        A, B = _phantoms()
        _, sim = run_summa(A, B, grid=(2, 2), block=16,
                           backend="predictor", bcast="pipelined")
        assert sim.total_time > 0

    def test_overlap_runner_refuses_predictor(self):
        from repro.core.overlap import run_summa_overlap

        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_summa_overlap(A, B, grid=(2, 2), block=16,
                              backend="predictor")
        msg = _refusal(exc, "overlap", "backend='des'")
        assert "macro" in msg

    def test_hsumma_overlap_runner_refuses_predictor(self):
        from repro.core.overlap import run_hsumma_overlap

        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_hsumma_overlap(A, B, grid=(4, 4), groups=4,
                               outer_block=16, backend="predictor")
        _refusal(exc, "overlap", "backend='des'")


class TestNewChainRunnersStopRefusing:
    """Runners that gained predictor chains this release must price a
    clean scale-mode query instead of refusing it."""

    def test_cannon_predicts(self):
        from repro.algorithms.cannon import run_cannon

        A, B = _phantoms()
        _, sim = run_cannon(A, B, grid=(4, 4), backend="predictor")
        assert sim.total_time > 0

    def test_fox_predicts(self):
        from repro.algorithms.fox import run_fox

        A, B = _phantoms()
        _, sim = run_fox(A, B, grid=(4, 4), backend="predictor")
        assert sim.total_time > 0

    def test_dns3d_predicts(self):
        from repro.algorithms.dns3d import run_dns3d

        A, B = _phantoms()
        _, sim = run_dns3d(A, B, nprocs=64, backend="predictor")
        assert sim.total_time > 0

    def test_25d_predicts(self):
        from repro.algorithms.algo25d import run_25d

        A, B = _phantoms()
        _, sim = run_25d(A, B, nprocs=32, replication=2,
                         backend="predictor")
        assert sim.total_time > 0

    @pytest.mark.parametrize("runner_kwargs", [
        ("cannon", dict(grid=(4, 4))),
        ("fox", dict(grid=(4, 4))),
        ("dns3d", dict(nprocs=64)),
        ("25d", dict(nprocs=32, replication=2)),
    ], ids=lambda rk: rk[0])
    def test_new_chains_still_refuse_pipelined(self, runner_kwargs):
        from repro.algorithms.algo25d import run_25d
        from repro.algorithms.cannon import run_cannon
        from repro.algorithms.dns3d import run_dns3d
        from repro.algorithms.fox import run_fox
        from repro.mpi.comm import CollectiveOptions

        name, kwargs = runner_kwargs
        runner = {"cannon": run_cannon, "fox": run_fox,
                  "dns3d": run_dns3d, "25d": run_25d}[name]
        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            runner(A, B, backend="predictor",
                   options=CollectiveOptions(bcast="hypersystolic"),
                   **kwargs)
        _refusal(exc, "pipelined broadcast hypersystolic",
                 "backend='macro'")


class TestLegitimateRefusals:
    """Runners without a closed form keep refusing — by named feature,
    with the fallback backend spelled out."""

    def test_lu_refuses_with_named_fallback(self):
        from repro.factorization.lu import run_block_lu

        A = PhantomArray((64, 64))
        with pytest.raises(ConfigurationError) as exc:
            run_block_lu(A, grid=(2, 2), block=16, backend="predictor")
        msg = _refusal(exc, "data-dependent panel ownership",
                       "backend='macro'")
        assert "backend='des'" in msg

    def test_qr_refuses_with_named_fallback(self):
        from repro.factorization.qr import run_block_qr

        A = PhantomArray((64, 64))
        with pytest.raises(ConfigurationError) as exc:
            run_block_qr(A, grid=(2, 2), block=16, backend="predictor")
        msg = _refusal(exc, "data-dependent reflector flow",
                       "backend='macro'")
        assert "backend='des'" in msg

    def test_multilevel_refuses_with_named_fallback(self):
        from repro.core.hsumma import run_hsumma_multilevel

        A, B = _phantoms()
        with pytest.raises(ConfigurationError) as exc:
            run_hsumma_multilevel(A, B, grid=(4, 4),
                                  row_factors=(2, 2), col_factors=(2, 2),
                                  blocks=(8, 4), backend="predictor")
        _refusal(exc, "level-recursive scheduling", "backend='macro'")


class TestCosterRefusal:
    def test_participant_dependent_coster(self):
        """A topology-positional network has no participant-count form;
        the refusal points at the macro backend, which can step the
        very same coster."""
        from repro.network.model import HockneyParams
        from repro.network.tree import SwitchedCluster

        A, B = _phantoms()
        network = SwitchedCluster(
            nnodes=4, nodes_per_switch=2,
            params=HockneyParams(1e-6, 1e-10),
        )
        with pytest.raises(ConfigurationError) as exc:
            run_summa(A, B, grid=(2, 2), block=16, backend="predictor",
                      network=network)
        msg = str(exc.value)
        assert "participant-dependent costs" in msg
        assert "backend='macro'" in msg


class TestBackendObject:
    def test_faulted_backend_construction_refuses(self):
        from repro.faults import parse_fault_spec
        from repro.network.homogeneous import HomogeneousNetwork
        from repro.simulator.runtime import DEFAULT_PARAMS

        network = HomogeneousNetwork(4, DEFAULT_PARAMS)
        schedule = parse_fault_spec("kill(rank=1,t=0.5)", seed=0)
        with pytest.raises(ConfigurationError) as exc:
            PredictorBackend(network, faults=schedule)
        msg = str(exc.value)
        assert "'fault injection'" in msg
        assert "fallback: use backend='des'" in msg
