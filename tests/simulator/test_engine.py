"""Unit tests for the discrete-event engine."""

import numpy as np
import pytest

from repro.errors import DeadlockError, SimulationError
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine
from repro.simulator.requests import (
    ComputeRequest,
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    SendRequest,
    WaitRequest,
)

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _engine(n: int, **kw) -> Engine:
    return Engine(HomogeneousNetwork(n, PARAMS), **kw)


class TestBasicTransfers:
    def test_ping(self):
        def sender():
            yield SendRequest(1, 0, b"x" * 100)

        def receiver():
            data = yield RecvRequest(0, 0)
            return data

        res = _engine(2).run([sender(), receiver()])
        assert res.return_values[1] == b"x" * 100
        assert res.total_time == pytest.approx(PARAMS.transfer_time(100))

    def test_rendezvous_waits_for_late_receiver(self):
        def sender():
            yield SendRequest(1, 0, b"x")

        def receiver():
            yield ComputeRequest(1.0)
            data = yield RecvRequest(0, 0)
            return data

        res = _engine(2).run([sender(), receiver()])
        # Transfer starts at t=1.0 when the receiver posts.
        assert res.total_time == pytest.approx(1.0 + PARAMS.transfer_time(1))
        # The sender's wait counts as communication time.
        assert res.stats[0].comm_time == pytest.approx(
            1.0 + PARAMS.transfer_time(1)
        )

    def test_fifo_ordering_same_channel(self):
        def sender():
            yield SendRequest(1, 0, "first")
            yield SendRequest(1, 0, "second")

        def receiver():
            a = yield RecvRequest(0, 0)
            b = yield RecvRequest(0, 0)
            return (a, b)

        res = _engine(2).run([sender(), receiver()])
        assert res.return_values[1] == ("first", "second")

    def test_tags_demultiplex(self):
        def sender():
            yield SendRequest(1, 7, "seven")
            yield SendRequest(1, 8, "eight")

        def receiver():
            # Receive in reverse tag order.
            b = yield IRecvRequest(0, 8)
            a = yield IRecvRequest(0, 7)
            va = yield WaitRequest(a)
            vb = yield WaitRequest(b)
            return (va, vb)

        res = _engine(2).run([sender(), receiver()])
        assert res.return_values[1] == ("seven", "eight")

    def test_compute_advances_clock(self):
        def prog():
            yield ComputeRequest(2.5)

        res = _engine(1).run([prog()])
        assert res.total_time == pytest.approx(2.5)
        assert res.stats[0].compute_time == pytest.approx(2.5)
        assert res.stats[0].comm_time == 0.0

    def test_message_stats(self):
        def sender():
            yield SendRequest(1, 0, np.zeros(100))

        def receiver():
            yield RecvRequest(0, 0)

        res = _engine(2).run([sender(), receiver()])
        assert res.stats[0].messages_sent == 1
        assert res.stats[0].bytes_sent == 800
        assert res.stats[1].messages_sent == 0
        assert res.total_messages == 1
        assert res.total_bytes == 800


class TestNonblocking:
    def test_isend_returns_immediately(self):
        def sender():
            handle = yield ISendRequest(1, 0, b"data")
            yield ComputeRequest(0.5)  # overlap
            yield WaitRequest(handle)
            return "done"

        def receiver():
            data = yield RecvRequest(0, 0)
            return data

        res = _engine(2).run([sender(), receiver()])
        assert res.return_values == ["done", b"data"]
        # Sender's compute overlapped with the transfer.
        assert res.stats[0].clock == pytest.approx(0.5)

    def test_irecv_wait_returns_payload(self):
        def sender():
            yield ComputeRequest(0.1)
            yield SendRequest(1, 0, 42.0)

        def receiver():
            handle = yield IRecvRequest(0, 0)
            value = yield WaitRequest(handle)
            return value

        res = _engine(2).run([sender(), receiver()])
        assert res.return_values[1] == 42.0

    def test_wait_after_completion_is_cheap(self):
        def sender():
            yield SendRequest(1, 0, b"z")

        def receiver():
            handle = yield IRecvRequest(0, 0)
            yield ComputeRequest(10.0)  # transfer finishes long before
            value = yield WaitRequest(handle)
            return value

        res = _engine(2).run([sender(), receiver()])
        assert res.return_values[1] == b"z"
        assert res.stats[1].clock == pytest.approx(10.0)

    def test_self_message_via_nonblocking(self):
        def prog():
            sh = yield ISendRequest(0, 0, "self")
            rh = yield IRecvRequest(0, 0)
            value = yield WaitRequest(rh)
            yield WaitRequest(sh)
            return value

        res = _engine(1).run([prog()])
        assert res.return_values[0] == "self"

    def test_wait_on_foreign_handle_rejected(self):
        def a():
            handle = yield ISendRequest(1, 0, b"x")
            yield SendRequest(1, 1, handle, 8)

        def b():
            handle = yield RecvRequest(0, 1)
            yield RecvRequest(0, 0)
            yield WaitRequest(handle)

        with pytest.raises(SimulationError, match="waiting on rank"):
            _engine(2).run([a(), b()])


class TestErrors:
    def test_blocking_send_to_self_rejected(self):
        def prog():
            yield SendRequest(0, 0, b"x")

        with pytest.raises(SimulationError, match="self"):
            _engine(1).run([prog()])

    def test_deadlock_detected(self):
        def a():
            yield RecvRequest(1, 0)

        def b():
            yield RecvRequest(0, 0)

        with pytest.raises(DeadlockError, match="rank 0"):
            _engine(2).run([a(), b()])

    def test_deadlock_message_names_operation(self):
        def a():
            yield RecvRequest(1, 99)

        def b():
            return
            yield  # pragma: no cover

        with pytest.raises(DeadlockError, match="Recv"):
            _engine(2).run([a(), b()])

    def test_unknown_request_rejected(self):
        def prog():
            yield "not a request"

        with pytest.raises(SimulationError, match="unknown request"):
            _engine(1).run([prog()])

    def test_no_programs_rejected(self):
        with pytest.raises(SimulationError):
            _engine(1).run([])

    def test_too_many_programs_rejected(self):
        def prog():
            return
            yield  # pragma: no cover

        with pytest.raises(SimulationError):
            _engine(1).run([prog(), prog()])

    def test_event_cap(self):
        def a():
            for _ in range(100):
                yield ComputeRequest(0.001)

        eng = Engine(HomogeneousNetwork(1, PARAMS), max_events=10)
        with pytest.raises(SimulationError, match="event cap"):
            eng.run([a()])


class TestContention:
    def test_shared_link_serialises(self):
        # A network where every transfer uses one global link.
        class OneWire(HomogeneousNetwork):
            def links(self, src, dst):
                return (("wire",),) if src != dst else ()

        net = OneWire(4, PARAMS)
        t_single = PARAMS.transfer_time(1000)

        # Two disjoint transfers (0->1 and 2->3) sharing the one wire.
        def s01():
            yield SendRequest(1, 0, b"x" * 1000)

        def r1():
            yield RecvRequest(0, 0)

        def s23():
            yield SendRequest(3, 0, b"y" * 1000)

        def r3():
            yield RecvRequest(2, 0)

        res = Engine(net, contention=True).run([s01(), r1(), s23(), r3()])
        assert res.total_time == pytest.approx(2 * t_single)
        res_free = Engine(net, contention=False).run(
            [s01(), r1(), s23(), r3()]
        )
        assert res_free.total_time == pytest.approx(t_single)


class TestTracing:
    def test_trace_records(self):
        def sender():
            yield SendRequest(1, 5, b"abc")

        def receiver():
            yield RecvRequest(0, 5)

        res = Engine(
            HomogeneousNetwork(2, PARAMS), collect_trace=True
        ).run([sender(), receiver()])
        assert len(res.trace) == 1
        rec = res.trace[0]
        assert (rec.src, rec.dst, rec.nbytes) == (0, 1, 3)
        assert rec.duration == pytest.approx(PARAMS.transfer_time(3))

    def test_no_trace_by_default(self):
        def sender():
            yield SendRequest(1, 0, b"abc")

        def receiver():
            yield RecvRequest(0, 0)

        res = _engine(2).run([sender(), receiver()])
        assert res.trace == []


class TestAccounting:
    def test_clocks_monotonic_and_consistent(self):
        def prog(rank_peer):
            def gen():
                yield ComputeRequest(0.1)
                if rank_peer == 1:
                    yield SendRequest(1, 0, b"x" * 500)
                else:
                    yield RecvRequest(0, 0)
                yield ComputeRequest(0.2)

            return gen()

        res = _engine(2).run([prog(1), prog(0)])
        for s in res.stats:
            assert s.clock >= 0
            assert s.comm_time >= 0
            assert s.compute_time >= 0
            assert s.other_time == pytest.approx(0.0, abs=1e-12)

    def test_return_values_in_rank_order(self):
        def prog(r):
            def gen():
                yield ComputeRequest(0.01 * (5 - r))
                return r

            return gen()

        res = _engine(4).run([prog(r) for r in range(4)])
        assert res.return_values == [0, 1, 2, 3]
