"""Unit tests for the execution backends (DES / macro) and their
shared resolution helper."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mpi.comm import make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator.backends import DesBackend, MacroBackend, resolve_backend
from repro.simulator.engine import Engine
from repro.simulator.runtime import run_spmd

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _net(p):
    return HomogeneousNetwork(p, PARAMS)


def _run(backend, nranks, body):
    """Run ``body(ctx) -> generator`` on both real contexts."""
    programs = [body(ctx) for ctx in make_contexts(nranks)]
    return resolve_backend(backend, _net(nranks)).run(programs)


class TestResolveBackend:
    def test_none_and_des_build_des(self):
        assert isinstance(resolve_backend(None, _net(2)), DesBackend)
        assert isinstance(resolve_backend("des", _net(2)), DesBackend)

    def test_macro_builds_macro(self):
        assert isinstance(resolve_backend("macro", _net(2)), MacroBackend)

    def test_engine_instance_passes_through(self):
        eng = Engine(_net(2))
        assert resolve_backend(eng, _net(4)) is eng

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("quantum", _net(2))


class TestMacroResults:
    """Every collective's *result values* must match the expanded
    algorithms' conventions, not just its timing."""

    @pytest.mark.parametrize("backend", [None, "macro"])
    def test_bcast_delivers_root_payload(self, backend):
        def body(ctx):
            def g():
                obj = [1, 2, 3] if ctx.rank == 1 else None
                got = yield from ctx.world.bcast(obj, root=1)
                return got
            return g()

        sim = _run(backend, 4, body)
        assert all(rv == [1, 2, 3] for rv in sim.return_values)

    @pytest.mark.parametrize("backend", [None, "macro"])
    def test_scatter_distributes_parts(self, backend):
        def body(ctx):
            def g():
                parts = [f"part{i}" for i in range(4)] if ctx.rank == 0 else None
                got = yield from ctx.world.scatter(parts, root=0)
                return got
            return g()

        sim = _run(backend, 4, body)
        assert sim.return_values == [f"part{i}" for i in range(4)]

    @pytest.mark.parametrize("backend", [None, "macro"])
    def test_gather_collects_on_root_only(self, backend):
        def body(ctx):
            def g():
                got = yield from ctx.world.gather(ctx.rank * 10, root=2)
                return got
            return g()

        sim = _run(backend, 4, body)
        assert sim.return_values[2] == [0, 10, 20, 30]
        assert all(sim.return_values[r] is None for r in (0, 1, 3))

    @pytest.mark.parametrize("backend", [None, "macro"])
    def test_allgather_collects_everywhere(self, backend):
        def body(ctx):
            def g():
                got = yield from ctx.world.allgather(ctx.rank)
                return got
            return g()

        sim = _run(backend, 4, body)
        assert all(rv == [0, 1, 2, 3] for rv in sim.return_values)

    @pytest.mark.parametrize("backend", [None, "macro"])
    def test_reduce_and_allreduce_sum(self, backend):
        def body(ctx):
            def g():
                partial = yield from ctx.world.reduce(
                    np.full(2, float(ctx.rank)), root=0
                )
                total = yield from ctx.world.allreduce(np.ones(2))
                return partial, total
            return g()

        sim = _run(backend, 4, body)
        partial, total = sim.return_values[0]
        assert np.allclose(partial, 6.0)
        assert all(np.allclose(rv[1], 4.0) for rv in sim.return_values)
        assert sim.return_values[1][0] is None

    @pytest.mark.parametrize("backend", [None, "macro"])
    def test_reduce_phantom_keeps_widest_itemsize(self, backend):
        def body(ctx):
            def g():
                got = yield from ctx.world.allreduce(
                    PhantomArray((3,), itemsize=4 if ctx.rank else 8)
                )
                return got
            return g()

        sim = _run(backend, 4, body)
        assert all(rv.itemsize == 8 for rv in sim.return_values)

    @pytest.mark.parametrize("backend", [None, "macro"])
    def test_barrier_returns_none(self, backend):
        def body(ctx):
            def g():
                got = yield from ctx.world.barrier()
                return got
            return g()

        sim = _run(backend, 4, body)
        assert sim.return_values == [None] * 4


class TestMacroTiming:
    def test_single_rank_collectives_free(self):
        def body(ctx):
            def g():
                yield from ctx.world.bcast("x", root=0)
                yield from ctx.world.barrier()
                return "done"
            return g()

        sim = _run("macro", 1, body)
        assert sim.total_time == 0.0
        assert sim.return_values == ["done"]

    def test_macro_matches_des_on_synchronous_arrival(self):
        # Equal skew on every rank: the collective starts when all have
        # arrived, and the analytic cost equals the expanded tree's.
        def body(ctx):
            def g():
                yield from ctx.compute(1e-3)
                got = yield from ctx.world.bcast(
                    "p" if ctx.rank == 0 else None, root=0
                )
                return got
            return g()

        des = _run(None, 4, body)
        macro = _run("macro", 4, body)
        assert macro.total_time == pytest.approx(des.total_time)
        assert macro.comm_time == pytest.approx(des.comm_time)
        assert macro.compute_time == pytest.approx(des.compute_time)

    def test_macro_is_conservative_on_staggered_arrival(self):
        # Documented macro trade-off: the whole collective is charged
        # from the *latest* arrival, whereas the DES overlaps early tree
        # levels with the stragglers' compute.  Macro must never report
        # a faster run than the DES here.
        def body(ctx):
            def g():
                yield from ctx.compute(ctx.rank * 1e-3)
                got = yield from ctx.world.bcast(
                    "p" if ctx.rank == 0 else None, root=0
                )
                return got
            return g()

        des = _run(None, 4, body)
        macro = _run("macro", 4, body)
        assert macro.total_time >= des.total_time

    def test_macro_point_to_point_unchanged(self):
        # Programs mixing p2p with collectives run p2p through the
        # inherited DES machinery at identical cost.
        def body(ctx):
            def g():
                if ctx.rank == 0:
                    yield from ctx.world.send(np.zeros(16), 1)
                elif ctx.rank == 1:
                    yield from ctx.world.recv(0)
                yield from ctx.world.barrier()
                return ctx.rank
            return g()

        des = _run(None, 2, body)
        macro = _run("macro", 2, body)
        assert macro.total_time == pytest.approx(des.total_time)

    def test_collectives_do_not_count_as_messages(self):
        # Documented macro trade-off: satisfied collectives move no
        # simulated messages, so message/byte counters see nothing.
        def body(ctx):
            def g():
                yield from ctx.world.bcast(
                    np.zeros(128) if ctx.rank == 0 else None, root=0
                )
                return None
            return g()

        macro = _run("macro", 4, body)
        assert all(s.messages_sent == 0 for s in macro.stats)
        des = _run(None, 4, body)
        assert sum(s.messages_sent for s in des.stats) > 0

    def test_run_spmd_backend_threading(self):
        def prog(ctx):
            def g():
                got = yield from ctx.world.allreduce(float(ctx.rank))
                return got
            return g()

        des = run_spmd(prog, 8, params=PARAMS)
        macro = run_spmd(prog, 8, params=PARAMS, backend="macro")
        assert macro.return_values == des.return_values
        assert macro.total_time == pytest.approx(des.total_time)
