"""Tests for the blocked Householder QR."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.factorization import run_block_qr
from repro.factorization.qr import _panel_householder
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")


class TestPanelHouseholder:
    def test_reconstruction(self, rng):
        P = rng.standard_normal((12, 4))
        V, T, R = _panel_householder(P)
        Q = np.eye(12) - V @ T @ V.T
        rec = Q @ np.vstack([R, np.zeros((8, 4))])
        assert np.max(np.abs(rec - P)) < 1e-12

    def test_v_unit_lower(self, rng):
        P = rng.standard_normal((10, 3))
        V, _, _ = _panel_householder(P)
        assert np.allclose(np.diag(V[:3]), 1.0)
        assert np.allclose(np.triu(V[:3], 1), 0.0)

    def test_q_orthogonal(self, rng):
        P = rng.standard_normal((8, 8))
        V, T, _ = _panel_householder(P)
        Q = np.eye(8) - V @ T @ V.T
        assert np.max(np.abs(Q.T @ Q - np.eye(8))) < 1e-12

    def test_wide_panel_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            _panel_householder(rng.standard_normal((3, 5)))


class TestBlockQrCorrectness:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (2, 3), (4, 4)])
    def test_gram_identity(self, rng, grid):
        """R^T R == A^T A holds iff A = QR with orthogonal Q."""
        n = 32
        A = rng.standard_normal((n, n))
        R, _ = run_block_qr(A, grid=grid, block=8, params=PARAMS)
        assert np.max(np.abs(R.T @ R - A.T @ A)) < 1e-10

    def test_upper_triangular(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        R, _ = run_block_qr(A, grid=(2, 2), block=8, params=PARAMS)
        assert np.allclose(R, np.triu(R))

    def test_matches_numpy_up_to_signs(self, rng):
        n = 24
        A = rng.standard_normal((n, n))
        R, _ = run_block_qr(A, grid=(2, 2), block=4, params=PARAMS)
        _, Rref = np.linalg.qr(A)
        assert np.max(np.abs(np.abs(R) - np.abs(Rref))) < 1e-10

    @pytest.mark.parametrize("groups", [(2, 1), (1, 2), (2, 2)])
    def test_hierarchical_same_result(self, rng, groups):
        n = 32
        A = rng.standard_normal((n, n))
        R1, _ = run_block_qr(A, grid=(2, 2), block=8, params=PARAMS)
        R2, _ = run_block_qr(A, grid=(2, 2), block=8, groups=groups,
                             params=PARAMS)
        assert np.allclose(R1, R2)

    @pytest.mark.parametrize("bcast", ["binomial", "vandegeijn"])
    def test_broadcast_algorithms(self, rng, bcast):
        n = 32
        A = rng.standard_normal((n, n))
        opts = CollectiveOptions(bcast=bcast)
        R, _ = run_block_qr(A, grid=(2, 2), block=8, groups=(2, 2),
                            params=PARAMS, options=opts)
        assert np.max(np.abs(R.T @ R - A.T @ A)) < 1e-10

    def test_non_square_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            run_block_qr(rng.standard_normal((8, 10)), grid=(2, 2),
                         block=2, params=PARAMS)


class TestBlockQrTiming:
    def test_phantom_mode(self):
        R, sim = run_block_qr(PhantomArray((256, 256)), grid=(2, 2),
                              block=16, params=PARAMS)
        assert isinstance(R, PhantomArray)
        assert sim.total_time > 0

    def test_hierarchy_reduces_comm_under_vdg(self):
        n = 1024
        _, flat = run_block_qr(PhantomArray((n, n)), grid=(8, 8),
                               block=32, params=PARAMS, options=VDG)
        _, hier = run_block_qr(PhantomArray((n, n)), grid=(8, 8),
                               block=32, groups=(4, 4),
                               params=PARAMS, options=VDG)
        assert hier.comm_time < flat.comm_time

    def test_more_comm_than_lu(self):
        """QR's allreduce-based trailing update costs more comm than
        LU's broadcast-only pattern at the same size."""
        from repro.factorization import run_block_lu

        n = 512
        _, qr_sim = run_block_qr(PhantomArray((n, n)), grid=(4, 4),
                                 block=32, params=PARAMS)
        _, _, lu_sim = run_block_lu(PhantomArray((n, n)), grid=(4, 4),
                                    block=32, params=PARAMS)
        assert qr_sim.comm_time > lu_sim.comm_time
