"""Tests for the block LU factorization (paper future work: LU/QR)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.factorization import LuConfig, run_block_lu
from repro.factorization.lu import _getrf_nopiv
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")


def _dd_matrix(rng, n):
    """Diagonally dominant: safe for unpivoted LU."""
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestGetrfNopiv:
    def test_reconstructs(self, rng):
        a = _dd_matrix(rng, 8)
        L, U = _getrf_nopiv(a)
        assert np.allclose(L @ U, a)
        assert np.allclose(np.diag(L), 1.0)
        assert np.allclose(L, np.tril(L))
        assert np.allclose(U, np.triu(U))

    def test_zero_pivot_rejected(self):
        with pytest.raises(ConfigurationError, match="pivot"):
            _getrf_nopiv(np.zeros((3, 3)))

    def test_identity(self):
        L, U = _getrf_nopiv(np.eye(4))
        assert np.allclose(L, np.eye(4))
        assert np.allclose(U, np.eye(4))


class TestLuConfig:
    def test_nblocks(self):
        assert LuConfig(n=64, b=8, s=2, t=2).nblocks == 8

    def test_block_divides(self):
        with pytest.raises(ConfigurationError):
            LuConfig(n=60, b=8, s=2, t=2)

    def test_groups_divide(self):
        with pytest.raises(ConfigurationError):
            LuConfig(n=64, b=8, s=2, t=2, I=3, J=1)


class TestBlockLuCorrectness:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (2, 3), (4, 4)])
    def test_reconstruction(self, rng, grid):
        n = 48
        A = _dd_matrix(rng, n)
        L, U, _ = run_block_lu(A, grid=grid, block=8, params=PARAMS)
        assert np.max(np.abs(L @ U - A)) < 1e-9

    def test_triangular_structure(self, rng):
        n = 32
        A = _dd_matrix(rng, n)
        L, U, _ = run_block_lu(A, grid=(2, 2), block=8, params=PARAMS)
        assert np.allclose(L, np.tril(L))
        assert np.allclose(U, np.triu(U))
        assert np.allclose(np.diag(L), 1.0)

    @pytest.mark.parametrize("groups", [(2, 1), (2, 2), (1, 2)])
    def test_hierarchical_same_result(self, rng, groups):
        n = 48
        A = _dd_matrix(rng, n)
        L1, U1, _ = run_block_lu(A, grid=(2, 2), block=8, params=PARAMS)
        L2, U2, _ = run_block_lu(A, grid=(2, 2), block=8, groups=groups,
                                 params=PARAMS)
        assert np.allclose(L1, L2)
        assert np.allclose(U1, U2)

    @pytest.mark.parametrize("bcast", ["binomial", "vandegeijn"])
    def test_broadcast_algorithms(self, rng, bcast):
        n = 32
        A = _dd_matrix(rng, n)
        opts = CollectiveOptions(bcast=bcast)
        L, U, _ = run_block_lu(A, grid=(2, 2), block=8, groups=(2, 2),
                               params=PARAMS, options=opts)
        assert np.max(np.abs(L @ U - A)) < 1e-9

    def test_non_square_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="square"):
            run_block_lu(rng.standard_normal((8, 10)), grid=(2, 2),
                         block=2, params=PARAMS)

    def test_matches_scipy(self, rng):
        """Against scipy's unpivoted path via solving: LUx = b."""
        n = 32
        A = _dd_matrix(rng, n)
        b = rng.standard_normal(n)
        L, U, _ = run_block_lu(A, grid=(2, 2), block=8, params=PARAMS)
        import scipy.linalg

        y = scipy.linalg.solve_triangular(L, b, lower=True, unit_diagonal=True)
        x = scipy.linalg.solve_triangular(U, y)
        assert np.allclose(A @ x, b)


class TestBlockLuTiming:
    def test_phantom_mode(self):
        L, U, sim = run_block_lu(PhantomArray((256, 256)), grid=(2, 2),
                                 block=16, params=PARAMS)
        assert isinstance(L, PhantomArray)
        assert sim.total_time > 0

    def test_phantom_matches_real_timing(self, rng):
        n = 48
        A = _dd_matrix(rng, n)
        _, _, real = run_block_lu(A, grid=(2, 2), block=8,
                                  params=PARAMS, gamma=1e-9)
        _, _, phantom = run_block_lu(PhantomArray((n, n)), grid=(2, 2),
                                     block=8, params=PARAMS, gamma=1e-9)
        assert real.total_time == pytest.approx(phantom.total_time)

    def test_compute_is_two_thirds_n_cubed(self):
        """Total flops across ranks ~ 2/3 n^3 for n >> b."""
        n, b, gamma = 512, 16, 1e-9
        _, _, sim = run_block_lu(PhantomArray((n, n)), grid=(4, 4),
                                 block=b, params=PARAMS, gamma=gamma)
        total_flops = sum(s.compute_time for s in sim.stats) / gamma
        assert total_flops == pytest.approx((2 / 3) * n**3, rel=0.15)

    def test_hierarchy_reduces_comm_under_vdg(self):
        """The HSUMMA grouping carries over to LU panel broadcasts."""
        n = 2048
        _, _, flat = run_block_lu(PhantomArray((n, n)), grid=(8, 8),
                                  block=32, params=PARAMS, options=VDG)
        _, _, hier = run_block_lu(PhantomArray((n, n)), grid=(8, 8),
                                  block=32, groups=(4, 4),
                                  params=PARAMS, options=VDG)
        assert hier.comm_time < flat.comm_time
