"""Tests for layout redistribution."""

import numpy as np
import pytest

from repro.blocks.distribution import BlockCyclicDistribution, BlockDistribution
from repro.blocks.redistribute import run_redistribute
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestRedistribute:
    def test_block_to_cyclic_roundtrip(self, rng):
        M = rng.standard_normal((24, 24))
        blk = BlockDistribution(24, 24, 2, 3)
        cyc = BlockCyclicDistribution(24, 24, 2, 3, 2, 2)
        out, _ = run_redistribute(M, blk, cyc, params=PARAMS)
        assert np.array_equal(out, M)
        back, _ = run_redistribute(M, cyc, blk, params=PARAMS)
        assert np.array_equal(back, M)

    def test_cyclic_to_cyclic_different_blocks(self, rng):
        M = rng.standard_normal((24, 24))
        a = BlockCyclicDistribution(24, 24, 2, 3, 2, 2)
        b = BlockCyclicDistribution(24, 24, 2, 3, 4, 4)
        out, _ = run_redistribute(M, a, b, params=PARAMS)
        assert np.array_equal(out, M)

    def test_identity_redistribution(self, rng):
        M = rng.standard_normal((12, 12))
        a = BlockDistribution(12, 12, 2, 2)
        b = BlockDistribution(12, 12, 2, 2)
        out, sim = run_redistribute(M, a, b, params=PARAMS)
        assert np.array_equal(out, M)
        # Identity moves no matrix data (only empty control bundles).
        assert sim.total_bytes < 12 * 12 * 8

    def test_rectangular(self, rng):
        M = rng.standard_normal((12, 36))
        blk = BlockDistribution(12, 36, 2, 3)
        cyc = BlockCyclicDistribution(12, 36, 2, 3, 2, 3)
        out, _ = run_redistribute(M, blk, cyc, params=PARAMS)
        assert np.array_equal(out, M)

    def test_phantom_mode(self):
        blk = BlockDistribution(24, 24, 2, 2)
        cyc = BlockCyclicDistribution(24, 24, 2, 2, 2, 2)
        out, sim = run_redistribute(PhantomArray((24, 24)), blk, cyc,
                                    params=PARAMS)
        assert isinstance(out, PhantomArray)
        # The phantom exchange still accounts the moved volume.
        assert sim.total_bytes > 0

    def test_grid_mismatch_rejected(self, rng):
        a = BlockDistribution(24, 24, 2, 2)
        b = BlockDistribution(24, 24, 2, 3)
        with pytest.raises(ConfigurationError):
            run_redistribute(rng.standard_normal((24, 24)), a, b,
                             params=PARAMS)

    def test_shape_mismatch_rejected(self, rng):
        a = BlockDistribution(24, 24, 2, 2)
        b = BlockDistribution(12, 24, 2, 2)
        with pytest.raises(ConfigurationError):
            run_redistribute(rng.standard_normal((24, 24)), a, b,
                             params=PARAMS)
