"""Tests for block and block-cyclic distributions."""

import numpy as np
import pytest

from repro.blocks.distribution import BlockCyclicDistribution, BlockDistribution
from repro.errors import ConfigurationError


class TestBlockDistribution:
    def test_tile_shape_uniform(self):
        d = BlockDistribution(12, 8, 3, 2)
        assert d.tile_shape(0, 0) == (4, 4)
        assert d.tile_shape(2, 1) == (4, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockDistribution(10, 8, 3, 2)

    def test_owner(self):
        d = BlockDistribution(12, 8, 3, 2)
        assert d.owner(0, 0) == (0, 0)
        assert d.owner(11, 7) == (2, 1)
        assert d.owner(4, 3) == (1, 0)

    def test_owner_bounds(self):
        d = BlockDistribution(4, 4, 2, 2)
        with pytest.raises(ConfigurationError):
            d.owner(4, 0)

    def test_global_to_local(self):
        d = BlockDistribution(12, 8, 3, 2)
        assert d.global_to_local(5, 6) == (1, 2)

    def test_extract_assemble_roundtrip(self):
        d = BlockDistribution(6, 9, 2, 3)
        M = np.arange(54.0).reshape(6, 9)
        tiles = {
            (i, j): d.extract_tile(M, i, j)
            for i in range(2)
            for j in range(3)
        }
        assert np.array_equal(d.assemble(tiles), M)

    def test_extract_is_copy(self):
        d = BlockDistribution(4, 4, 2, 2)
        M = np.zeros((4, 4))
        tile = d.extract_tile(M, 0, 0)
        tile[0, 0] = 99
        assert M[0, 0] == 0

    def test_extract_wrong_shape(self):
        d = BlockDistribution(4, 4, 2, 2)
        with pytest.raises(ConfigurationError):
            d.extract_tile(np.zeros((5, 4)), 0, 0)

    def test_assemble_missing_tile(self):
        d = BlockDistribution(4, 4, 2, 2)
        with pytest.raises(ConfigurationError, match="missing"):
            d.assemble({(0, 0): np.zeros((2, 2))})

    def test_assemble_bad_tile_shape(self):
        d = BlockDistribution(4, 4, 2, 2)
        tiles = {(i, j): np.zeros((2, 2)) for i in range(2) for j in range(2)}
        tiles[(1, 1)] = np.zeros((3, 3))
        with pytest.raises(ConfigurationError):
            d.assemble(tiles)

    def test_grid_bounds(self):
        d = BlockDistribution(4, 4, 2, 2)
        with pytest.raises(ConfigurationError):
            d.tile_shape(2, 0)


class TestBlockCyclicDistribution:
    def test_tile_shape(self):
        d = BlockCyclicDistribution(8, 8, 2, 2, 2, 2)
        assert d.tile_shape(0, 0) == (4, 4)

    def test_owner_of_block_cycles(self):
        d = BlockCyclicDistribution(8, 8, 2, 2, 2, 2)
        assert d.owner_of_block(0, 0) == (0, 0)
        assert d.owner_of_block(1, 0) == (1, 0)
        assert d.owner_of_block(2, 0) == (0, 0)
        assert d.owner_of_block(3, 3) == (1, 1)

    def test_owner_element(self):
        d = BlockCyclicDistribution(8, 8, 2, 2, 2, 2)
        # Element (2, 2) is in block (1, 1) -> owner (1, 1).
        assert d.owner(2, 2) == (1, 1)

    def test_local_block_index(self):
        d = BlockCyclicDistribution(8, 8, 2, 2, 2, 2)
        assert d.local_block_index(2, 0) == (1, 0)

    def test_extract_assemble_roundtrip(self):
        d = BlockCyclicDistribution(12, 12, 2, 3, 2, 2)
        M = np.arange(144.0).reshape(12, 12)
        tiles = {
            (i, j): d.extract_tile(M, i, j)
            for i in range(2)
            for j in range(3)
        }
        assert np.array_equal(d.assemble(tiles), M)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockCyclicDistribution(10, 8, 2, 2, 2, 2)

    def test_differs_from_block_distribution(self):
        """Cyclic ownership must interleave rows, unlike checkerboard."""
        d = BlockCyclicDistribution(8, 8, 2, 2, 2, 2)
        b = BlockDistribution(8, 8, 2, 2)
        # Global row 2 is grid row 0 in block-cyclic (block 1 cycles),
        # but still grid row 0 in checkerboard; row 4 differs.
        assert d.owner(4, 0)[0] == 0
        assert b.owner(4, 0)[0] == 1
