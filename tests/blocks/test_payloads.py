"""Tests for repro.payloads (phantom arrays, splitting, combining)."""

import numpy as np
import pytest

from repro.errors import DataMismatchError
from repro.payloads import (
    PhantomArray,
    combine_payloads,
    is_phantom,
    join_payload,
    nbytes_of,
    split_payload,
)


class TestPhantomArray:
    def test_size_and_nbytes(self):
        p = PhantomArray((3, 4))
        assert p.size == 12
        assert p.nbytes == 96

    def test_custom_itemsize(self):
        assert PhantomArray((10,), itemsize=1).nbytes == 10

    def test_reshape(self):
        p = PhantomArray((3, 4)).reshape(2, 6)
        assert p.shape == (2, 6)

    def test_reshape_mismatch(self):
        with pytest.raises(DataMismatchError):
            PhantomArray((3, 4)).reshape(5, 5)

    def test_matmul_shape(self):
        c = PhantomArray((3, 4)).matmul_shape(PhantomArray((4, 7)))
        assert c.shape == (3, 7)

    def test_matmul_mismatch(self):
        with pytest.raises(DataMismatchError):
            PhantomArray((3, 4)).matmul_shape(PhantomArray((5, 7)))

    def test_negative_dim_rejected(self):
        with pytest.raises(DataMismatchError):
            PhantomArray((-1, 2))

    def test_is_phantom(self):
        assert is_phantom(PhantomArray((2,)))
        assert not is_phantom(np.zeros(2))


class TestNbytesOf:
    def test_numpy(self):
        assert nbytes_of(np.zeros((2, 3))) == 48

    def test_phantom(self):
        assert nbytes_of(PhantomArray((2, 3))) == 48

    def test_unknown_rejected(self):
        with pytest.raises(DataMismatchError):
            nbytes_of("a string")


class TestSplitJoin:
    def test_roundtrip_even(self):
        arr = np.arange(24.0).reshape(4, 6)
        segs = split_payload(arr, 4)
        back = join_payload(segs)
        assert np.array_equal(back, arr)

    def test_roundtrip_uneven(self):
        arr = np.arange(10.0)
        back = join_payload(split_payload(arr, 3))
        assert np.array_equal(back, arr)

    def test_roundtrip_more_parts_than_elements(self):
        arr = np.arange(3.0)
        segs = split_payload(arr, 8)
        assert len(segs) == 8
        assert sum(s.nbytes for s in segs) == arr.nbytes
        assert np.array_equal(join_payload(segs), arr)

    def test_join_out_of_order(self):
        arr = np.arange(12.0).reshape(3, 4)
        segs = split_payload(arr, 4)
        back = join_payload(segs[::-1])
        assert np.array_equal(back, arr)

    def test_sizes_near_equal(self):
        segs = split_payload(np.zeros(10), 3)
        sizes = [s.data.size for s in segs]
        assert max(sizes) - min(sizes) <= 1

    def test_phantom_roundtrip(self):
        p = PhantomArray((6, 8))
        segs = split_payload(p, 5)
        assert sum(s.nbytes for s in segs) == p.nbytes
        back = join_payload(segs)
        assert isinstance(back, PhantomArray)
        assert back.shape == (6, 8)

    def test_zero_parts_rejected(self):
        with pytest.raises(DataMismatchError):
            split_payload(np.zeros(4), 0)

    def test_join_empty_rejected(self):
        with pytest.raises(DataMismatchError):
            join_payload([])

    def test_join_incomplete_rejected(self):
        segs = split_payload(np.zeros(8), 4)
        with pytest.raises(DataMismatchError):
            join_payload(segs[:3])

    def test_join_duplicate_rejected(self):
        segs = split_payload(np.zeros(8), 4)
        with pytest.raises(DataMismatchError):
            join_payload([segs[0], segs[0], segs[2], segs[3]])

    def test_join_mixed_splits_rejected(self):
        a = split_payload(np.zeros(8), 2)
        b = split_payload(np.zeros((2, 4)), 2)
        with pytest.raises(DataMismatchError):
            join_payload([a[0], b[1]])


class TestCombine:
    def test_numpy_sum(self):
        out = combine_payloads(np.ones(3), np.full(3, 2.0))
        assert np.allclose(out, 3.0)

    def test_phantom_combine(self):
        out = combine_payloads(PhantomArray((2, 2)), PhantomArray((2, 2)))
        assert isinstance(out, PhantomArray)

    def test_mixed_combine(self):
        out = combine_payloads(PhantomArray((3,)), np.zeros(3))
        assert isinstance(out, PhantomArray)
        assert out.shape == (3,)

    def test_mixed_combine_keeps_real_itemsize(self):
        # Regression: promoting the real operand used to default to
        # 8-byte items, shrinking or inflating the modelled wire size
        # of reductions over non-double data.
        out = combine_payloads(
            PhantomArray((4,), itemsize=4), np.zeros(4, dtype=np.float32)
        )
        assert isinstance(out, PhantomArray)
        assert out.itemsize == 4
        out = combine_payloads(np.zeros(4, dtype=np.float64), PhantomArray((4,), itemsize=4))
        assert out.itemsize == 8

    def test_mixed_combine_takes_wider_itemsize(self):
        out = combine_payloads(
            PhantomArray((2, 2), itemsize=2), PhantomArray((2, 2), itemsize=16)
        )
        assert out.itemsize == 16
        out = combine_payloads(
            PhantomArray((2, 2), itemsize=16), PhantomArray((2, 2), itemsize=2)
        )
        assert out.itemsize == 16

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataMismatchError):
            combine_payloads(PhantomArray((2,)), PhantomArray((3,)))


class TestJoinFastPath:
    """The zero-copy reassembly of in-order sibling views.

    ``join_payload`` returns the segments' shared flat buffer directly
    when they are untouched, in-order, gap-free views of it — the
    common case of a split that travelled through the simulator and
    came back whole.  Everything here checks the fast path fires only
    when that reconstruction is exact.
    """

    def test_fast_path_shares_memory(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)
        joined = join_payload(split_payload(arr, 5))
        np.testing.assert_array_equal(joined, arr)
        assert np.shares_memory(joined, arr)

    def test_out_of_order_segments_still_zero_copy(self):
        # join_payload reorders by index before checking adjacency.
        arr = np.arange(30, dtype=np.int64)
        segs = split_payload(arr, 4)
        joined = join_payload(list(reversed(segs)))
        np.testing.assert_array_equal(joined, arr)
        assert np.shares_memory(joined, arr)

    def test_zero_size_segments_skipped(self):
        arr = np.arange(3, dtype=np.float32)
        segs = split_payload(arr, 8)  # five empty pieces
        joined = join_payload(segs)
        np.testing.assert_array_equal(joined, arr)
        assert np.shares_memory(joined, arr)

    def test_foreign_segments_copy(self):
        # Segments rebuilt from fresh arrays (as a real transfer of
        # serialized data would produce) have no common base: the join
        # must copy, and still be value-correct.
        from repro.payloads import _Segment

        arr = np.arange(20, dtype=np.float64)
        segs = [
            _Segment(index=s.index, total=s.total, data=s.data.copy(),
                     shape=s.shape, phantom=False)
            for s in split_payload(arr, 3)
        ]
        joined = join_payload(segs)
        np.testing.assert_array_equal(joined, arr)
        assert not np.shares_memory(joined, arr)

    def test_partial_coverage_copies(self):
        # In-order views of the same buffer that skip elements must not
        # be mistaken for the whole: splitting a *slice* leaves the
        # parent buffer larger than the covered range.
        from repro.payloads import _Segment

        arr = np.arange(20, dtype=np.float64)
        view = arr[:10]
        segs = split_payload(view, 2)
        # Same base (arr is not the base of flat views of view — numpy
        # chains .base — so this exercises the base-identity check).
        joined = join_payload(segs)
        np.testing.assert_array_equal(joined, view)

    def test_matches_unsegmented_value(self):
        rng = np.random.default_rng(7)
        arr = rng.standard_normal((8, 8))
        for parts in (1, 2, 3, 7, 64, 65):
            joined = join_payload(split_payload(arr, parts))
            np.testing.assert_array_equal(joined, arr)
            assert joined.shape == arr.shape
            assert joined.dtype == arr.dtype
