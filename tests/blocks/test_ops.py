"""Tests for tile operations (generic over real/phantom)."""

import numpy as np
import pytest

from repro.blocks.ops import (
    gemm_flops,
    local_gemm_acc,
    slice_cols,
    slice_rows,
    zeros_like_result,
)
from repro.errors import DataMismatchError
from repro.mpi.comm import MpiContext
from repro.payloads import PhantomArray
from repro.simulator.engine import Engine
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams


class TestSlicing:
    def test_slice_rows_numpy_view(self):
        t = np.arange(12.0).reshape(3, 4)
        v = slice_rows(t, 1, 3)
        assert v.shape == (2, 4)
        assert np.shares_memory(v, t)  # a view, not a copy

    def test_slice_cols_numpy(self):
        t = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(slice_cols(t, 1, 3), t[:, 1:3])

    def test_slice_phantom(self):
        p = PhantomArray((6, 8))
        assert slice_rows(p, 2, 5).shape == (3, 8)
        assert slice_cols(p, 0, 4).shape == (6, 4)

    def test_out_of_range(self):
        with pytest.raises(DataMismatchError):
            slice_rows(np.zeros((3, 4)), 2, 5)
        with pytest.raises(DataMismatchError):
            slice_cols(PhantomArray((3, 4)), -1, 2)

    def test_non_2d_rejected(self):
        with pytest.raises(DataMismatchError):
            slice_rows(np.zeros(5), 0, 1)


class TestZerosLikeResult:
    def test_numpy(self):
        c = zeros_like_result(np.zeros((3, 4)), np.zeros((4, 5)))
        assert c.shape == (3, 5)
        assert np.all(c == 0)

    def test_phantom(self):
        c = zeros_like_result(PhantomArray((3, 4)), PhantomArray((4, 5)))
        assert isinstance(c, PhantomArray)
        assert c.shape == (3, 5)

    def test_mismatch(self):
        with pytest.raises(DataMismatchError):
            zeros_like_result(PhantomArray((3, 4)), PhantomArray((5, 5)))


class TestGemmFlops:
    def test_formula(self):
        assert gemm_flops(2, 3, 4) == 48.0

    def test_paper_total(self):
        # Summed over all SUMMA steps and ranks: 2 n^3.
        n, p, b = 64, 16, 8
        s = t = 4
        per_step = gemm_flops(n // s, b, n // t)
        assert per_step * (n // b) * p == 2.0 * n**3


def _run_single(gen_factory, gamma=0.0):
    ctx = MpiContext(0, 1, gamma=gamma)
    eng = Engine(HomogeneousNetwork(1, HockneyParams(1e-5, 1e-9)))
    return ctx, eng.run([gen_factory(ctx)])


class TestLocalGemmAcc:
    def test_real_accumulation(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0], [4.0]])
        c = np.zeros((1, 1))

        def prog(ctx):
            out = yield from local_gemm_acc(ctx, c, a, b)
            return out

        _, res = _run_single(prog)
        assert res.return_values[0][0, 0] == pytest.approx(11.0)

    def test_accumulates_not_overwrites(self):
        a = np.eye(2)
        b = np.eye(2)
        c = np.full((2, 2), 5.0)

        def prog(ctx):
            out = yield from local_gemm_acc(ctx, c, a, b)
            return out

        _, res = _run_single(prog)
        assert np.allclose(res.return_values[0], 5.0 + np.eye(2))

    def test_charges_flop_time(self):
        a, b = np.zeros((4, 8)), np.zeros((8, 2))
        c = np.zeros((4, 2))

        def prog(ctx):
            yield from local_gemm_acc(ctx, c, a, b)

        _, res = _run_single(prog, gamma=1e-6)
        assert res.total_time == pytest.approx(2 * 4 * 8 * 2 * 1e-6)

    def test_phantom_charges_without_data(self):
        a, b = PhantomArray((4, 8)), PhantomArray((8, 2))
        c = PhantomArray((4, 2))

        def prog(ctx):
            out = yield from local_gemm_acc(ctx, c, a, b)
            return out

        _, res = _run_single(prog, gamma=1e-6)
        assert res.total_time == pytest.approx(128 * 1e-6)
        assert isinstance(res.return_values[0], PhantomArray)

    def test_shape_mismatch_rejected(self):
        a, b = PhantomArray((4, 8)), PhantomArray((7, 2))
        c = PhantomArray((4, 2))

        def prog(ctx):
            yield from local_gemm_acc(ctx, c, a, b)

        with pytest.raises(DataMismatchError):
            _run_single(prog)

    def test_accumulator_mismatch_rejected(self):
        a, b = PhantomArray((4, 8)), PhantomArray((8, 2))
        c = PhantomArray((3, 2))

        def prog(ctx):
            yield from local_gemm_acc(ctx, c, a, b)

        with pytest.raises(DataMismatchError):
            _run_single(prog)
