"""Tests for verification helpers."""

import numpy as np
import pytest

from repro.blocks.verify import max_abs_error, relative_error
from repro.errors import DataMismatchError


class TestMaxAbsError:
    def test_zero_for_equal(self):
        a = np.arange(6.0).reshape(2, 3)
        assert max_abs_error(a, a.copy()) == 0.0

    def test_reports_max(self):
        a = np.zeros((2, 2))
        b = np.array([[0.0, 0.1], [0.0, -0.5]])
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(DataMismatchError):
            max_abs_error(np.zeros(2), np.zeros(3))

    def test_empty(self):
        assert max_abs_error(np.zeros((0, 2)), np.zeros((0, 2))) == 0.0


class TestRelativeError:
    def test_zero_for_equal(self):
        a = np.arange(1, 7, dtype=float).reshape(2, 3)
        assert relative_error(a, a.copy()) == 0.0

    def test_scale_invariant(self):
        ref = np.eye(3)
        err = relative_error(ref * 1.001, ref)
        err_scaled = relative_error(ref * 1000 * 1.001, ref * 1000)
        assert err == pytest.approx(err_scaled)

    def test_zero_reference(self):
        assert relative_error(np.ones(2), np.zeros(2)) == pytest.approx(
            np.sqrt(2)
        )

    def test_shape_mismatch(self):
        with pytest.raises(DataMismatchError):
            relative_error(np.zeros((2, 2)), np.zeros((2, 3)))
