"""Tests for the DistMatrix handle."""

import numpy as np
import pytest

from repro.blocks.distribution import BlockDistribution
from repro.blocks.dmatrix import DistMatrix
from repro.errors import ConfigurationError
from repro.payloads import PhantomArray


class TestDistMatrix:
    def test_from_global_tiles(self):
        M = np.arange(16.0).reshape(4, 4)
        dm = DistMatrix.from_global(M, 2, 2)
        assert np.array_equal(dm.tile(0, 0), M[:2, :2])
        assert np.array_equal(dm.tile(1, 1), M[2:, 2:])

    def test_tiles_cover_matrix(self):
        M = np.arange(24.0).reshape(4, 6)
        dm = DistMatrix.from_global(M, 2, 3)
        rebuilt = dm.assemble(dm.tiles())
        assert np.array_equal(rebuilt, M)

    def test_phantom_global(self):
        dm = DistMatrix.phantom_global(8, 8, 2, 2)
        assert dm.phantom
        t = dm.tile(1, 0)
        assert isinstance(t, PhantomArray)
        assert t.shape == (4, 4)

    def test_phantom_assemble(self):
        dm = DistMatrix.phantom_global(4, 4, 2, 2)
        out = dm.assemble(dm.tiles())
        assert isinstance(out, PhantomArray)
        assert out.shape == (4, 4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DistMatrix(np.zeros((3, 4)), BlockDistribution(4, 4, 2, 2))

    def test_shape_property(self):
        dm = DistMatrix.phantom_global(6, 8, 2, 2)
        assert dm.shape == (6, 8)
