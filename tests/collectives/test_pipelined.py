"""Conformance suite for the broadcast registry plus structural
properties of the segmented family (pipelined binary tree, 4-color
bidirectional ring, hyper-systolic ring).

The ``TestConformance*`` classes consume the ``bcast_algorithm``
fixture from ``conftest.py``, so every algorithm in
:data:`repro.collectives.BROADCAST_ALGORITHMS` is swept by
registration alone — a newly registered broadcast picks up delivery,
dtype, segment-count, macro-backend, verify-cleanliness and cost
checks without touching this file.
"""

import numpy as np
import pytest

from repro.collectives.cost import bcast_time
from repro.collectives.pipelined import (
    LinkStep,
    fourcolor_schedule,
    validate_link_coloring,
)
from repro.costs import (
    PIPELINED_BCASTS,
    hypersystolic_depth,
    hypersystolic_stride,
    optimal_pipeline_segments,
    segmented_fill_slots,
)
from repro.errors import ConfigurationError, ModelError, SimulationError
from repro.verify import VerifyOptions

NEW_ALGOS = ("segmented", "fourcolor", "hypersystolic")


# ---------------------------------------------------------------------------
# Registry-wide conformance (parametrized by registration alone)
# ---------------------------------------------------------------------------

class TestConformanceDelivery:
    @pytest.mark.parametrize("size", [2, 3, 5, 8, 13])
    def test_payload_bit_identity_all_roots(self, bcast_algorithm,
                                            bcast_harness, size):
        ref = np.arange(48, dtype=np.float64) * 0.5
        for root in (0, size // 2, size - 1):
            res = bcast_harness.run(bcast_algorithm, size, root=root,
                                    payload_factory=lambda: ref.copy())
            for value in res.return_values:
                assert value.dtype == ref.dtype
                assert np.array_equal(value, ref)

    @pytest.mark.parametrize("dtype", ["float32", "int32", "uint8"])
    def test_dtype_round_trip(self, bcast_algorithm, bcast_harness, dtype):
        ref = np.arange(40).astype(dtype)
        res = bcast_harness.run(bcast_algorithm, 6, root=1,
                                payload_factory=lambda: ref.copy())
        for value in res.return_values:
            assert value.dtype == ref.dtype
            assert np.array_equal(value, ref)

    @pytest.mark.parametrize("segments", [1, 2, 4, 7])
    def test_every_segment_count_delivers(self, bcast_algorithm,
                                          bcast_harness, segments):
        ref = np.arange(30.0)
        res = bcast_harness.run(bcast_algorithm, 9, segments=segments,
                                payload_factory=lambda: ref.copy())
        for value in res.return_values:
            assert np.array_equal(value, ref)

    def test_macro_backend_bit_identity(self, bcast_algorithm, bcast_harness):
        """The macro backend must hand every rank the same bytes the
        DES delivers (it satisfies the collective analytically but the
        payload routing is real)."""
        ref = np.arange(32.0)
        des = bcast_harness.run(bcast_algorithm, 8,
                                payload_factory=lambda: ref.copy())
        try:
            mac = bcast_harness.run(bcast_algorithm, 8, backend="macro",
                                    payload_factory=lambda: ref.copy())
        except ModelError:
            pytest.skip(f"{bcast_algorithm} has no closed form to "
                        "satisfy the macro backend")
        for a, b in zip(des.return_values, mac.return_values):
            assert np.array_equal(a, b)


class TestConformanceVerify:
    def test_verify_corpus_clean(self, bcast_algorithm, bcast_harness):
        """Structural checks + K perturbed delivery schedules: no
        unmatched sends, no leaks, bit-identical results under jitter."""
        res = bcast_harness.run(
            bcast_algorithm, 7, root=2,
            verify=VerifyOptions(schedules=2, strict=True),
        )
        assert res.verdict is not None and res.verdict.ok


class TestConformanceCost:
    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    @pytest.mark.parametrize("segments", [1, 2, 4])
    def test_des_matches_registry_closed_form(self, bcast_algorithm,
                                              bcast_harness, size, segments):
        """512 elements split evenly for every tested (size, segments)
        — including the 4-color ring's ``2*segments`` split — so the
        DES makespan must reproduce the registry closed form exactly
        for every algorithm in the exact set, and fall in the
        documented band for the approximate ``binary`` entry."""
        try:
            closed = bcast_time(bcast_algorithm, 4096, size,
                                bcast_harness.params, segments=segments)
        except ModelError:
            pytest.skip(f"{bcast_algorithm} has no registry closed form")
        res = bcast_harness.run(bcast_algorithm, size, segments=segments,
                                payload_factory=lambda: np.zeros(512))
        if bcast_algorithm in bcast_harness.exact_cost:
            assert res.total_time == pytest.approx(closed)
        else:
            assert res.total_time <= closed * (1 + 1e-12)
            assert res.total_time >= 0.4 * closed


# ---------------------------------------------------------------------------
# Closed-form building blocks
# ---------------------------------------------------------------------------

class TestFillSlots:
    def test_matches_brute_force(self):
        """fill(p) is the worst arrival slot of segment 0 over all
        relative ranks w: bitlen(w) + popcount(w) - 2 sends on the
        root->w path; the O(log p) scan must agree with the literal
        maximum."""
        for p in range(2, 700):
            brute = max(w.bit_length() + bin(w).count("1")
                        for w in range(1, p + 1)) - 2
            assert segmented_fill_slots(p) == brute, p

    def test_powers_of_two(self):
        # The all-ones rank w = 2^k - 1 (a pure right spine) dominates
        # with 2(k-1) slots; at p = 2^k itself, w = p adds one more.
        assert segmented_fill_slots(2) == 1
        assert segmented_fill_slots(4) == 2
        assert segmented_fill_slots(8) == 4
        assert segmented_fill_slots(16) == 6

    def test_monotone_in_p(self):
        vals = [segmented_fill_slots(p) for p in range(2, 300)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


class TestHypersystolicStride:
    def test_stride_minimises_depth(self):
        def depth(p, k):
            ngroups = -(-p // k)
            return max(a + min(k, p - a * k) - 1 for a in range(ngroups))

        for p in range(2, 200):
            k = hypersystolic_stride(p)
            d = hypersystolic_depth(p)
            assert d == depth(p, k)
            best = min(depth(p, kk) for kk in range(1, p + 1))
            assert d == best, p
            # Ties resolve to the smallest stride.
            assert all(depth(p, kk) > d for kk in range(1, k)), p

    def test_depth_scales_like_two_sqrt_p(self):
        for p in (16, 64, 100, 144, 196):
            d = hypersystolic_depth(p)
            assert d <= 2 * int(p ** 0.5) + 1
            assert d >= int(p ** 0.5)


class TestOptimalSegments:
    @pytest.mark.parametrize("algorithm", sorted(PIPELINED_BCASTS))
    def test_degenerate_inputs_pin_one_segment(self, algorithm):
        assert optimal_pipeline_segments(0, 16, 1e-5, 1e-9, algorithm) == 1
        assert optimal_pipeline_segments(1e6, 2, 1e-5, 1e-9, algorithm) == 1
        assert optimal_pipeline_segments(1e6, 16, 0.0, 1e-9, algorithm) == 1

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ModelError, match="not a pipelined"):
            optimal_pipeline_segments(1e6, 16, 1e-5, 1e-9, "binomial")

    def test_default_matches_legacy_pipelined_formula(self):
        s = optimal_pipeline_segments(1e6, 10, 1e-5, 1e-9)
        assert s == round((1e6 * 1e-9 * 8 / 1e-5) ** 0.5)


# ---------------------------------------------------------------------------
# 4-color schedule structure + mutation
# ---------------------------------------------------------------------------

class TestFourcolorSchedule:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 7, 10])
    @pytest.mark.parametrize("segments", [1, 2, 3])
    def test_schedule_validates(self, p, segments):
        validate_link_coloring(fourcolor_schedule(p, segments))

    @pytest.mark.parametrize("p", [3, 4, 5, 8])
    def test_every_rank_receives_every_segment_once(self, p):
        segments = 3
        steps = fourcolor_schedule(p, segments)
        got = {}
        for st in steps:
            got.setdefault(st.dst, []).append((st.color // 2, st.seg))
        want = {(d, k) for d in (0, 1) for k in range(segments)}
        for dst in range(1, p):
            assert sorted(got[dst]) == sorted(want), dst

    def test_makespan_matches_closed_form_slots(self):
        p, segments = 8, 4
        steps = fourcolor_schedule(p, segments)
        assert max(st.slot for st in steps) == p - 2 + segments - 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            fourcolor_schedule(1, 2)
        with pytest.raises(ConfigurationError):
            fourcolor_schedule(4, 0)
        with pytest.raises(ConfigurationError):
            fourcolor_schedule(4, 2, root=7)

    def test_mutated_color_is_caught(self):
        """Mutation: recolor one transfer out of its direction/parity
        class — the structural check must bite."""
        steps = fourcolor_schedule(6, 2)
        bad = steps[3]._replace(color=(steps[3].color + 1) % 4)
        with pytest.raises(SimulationError, match="color"):
            validate_link_coloring(steps[:3] + [bad] + steps[4:])

    def test_seeded_link_conflict_is_caught(self):
        """Mutation: schedule a second segment on an already-busy
        directed link in the same slot."""
        steps = fourcolor_schedule(6, 2)
        with pytest.raises(SimulationError, match="conflict"):
            validate_link_coloring(steps + [steps[0]._replace(seg=99)])


# ---------------------------------------------------------------------------
# DES timing identities specific to the new family
# ---------------------------------------------------------------------------

class TestFamilyTiming:
    def test_segmented_beats_plain_binomial_for_large_messages(
            self, bcast_harness):
        """Pipelining the tree pays once m*beta dominates: 8 MB over
        16 ranks at the closed-form optimal depth."""
        from repro.payloads import PhantomArray

        big = lambda: PhantomArray((1 << 20,))
        s = optimal_pipeline_segments(8 << 20, 16, 1e-4, 1e-9, "segmented")
        t_seg = bcast_harness.run("segmented", 16, segments=s,
                                  payload_factory=big).total_time
        t_bin = bcast_harness.run("binomial", 16,
                                  payload_factory=big).total_time
        assert t_seg < t_bin

    def test_fourcolor_halves_chain_bandwidth(self, bcast_harness):
        """Each direction of the ring carries half the bytes, so for
        bandwidth-bound messages the 4-color multicast runs in about
        half the pipelined-chain time at equal segment counts."""
        from repro.payloads import PhantomArray

        big = lambda: PhantomArray((1 << 23,))
        t_4c = bcast_harness.run("fourcolor", 12, segments=32,
                                 payload_factory=big).total_time
        t_chain = bcast_harness.run("pipelined", 12, segments=32,
                                    payload_factory=big).total_time
        assert t_4c < 0.65 * t_chain

    def test_hypersystolic_beats_pipelined_chain_fill(self, bcast_harness):
        """Same per-segment cadence, ~2*sqrt(p) instead of p fill."""
        payload = lambda: np.zeros(4096)
        t_hs = bcast_harness.run("hypersystolic", 64, segments=4,
                                 payload_factory=payload).total_time
        t_pc = bcast_harness.run("pipelined", 64, segments=4,
                                 payload_factory=payload).total_time
        assert t_hs < t_pc

    def test_stride_one_degenerates_to_chain(self, bcast_harness):
        """Where the optimal stride is 1 (tiny p), the hyper-systolic
        schedule is exactly the pipelined chain."""
        assert hypersystolic_stride(3) in (1, 2)
        p = next(q for q in range(2, 8) if hypersystolic_stride(q) == 1)
        payload = lambda: np.zeros(512)
        t_hs = bcast_harness.run("hypersystolic", p, segments=4,
                                 payload_factory=payload).total_time
        t_pc = bcast_harness.run("pipelined", p, segments=4,
                                 payload_factory=payload).total_time
        assert t_hs == pytest.approx(t_pc)
