"""Tests for allgather algorithms."""

import numpy as np
import pytest

from repro.collectives.allgather import allgather_rd, allgather_ring
from repro.network.model import HockneyParams
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


def _prog(fn):
    def prog(ctx):
        out = yield from fn(ctx.world, np.full(2, float(ctx.rank)))
        return [float(v[0]) for v in out]

    return prog


class TestAllgather:
    @pytest.mark.parametrize("fn", [allgather_ring, allgather_rd])
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 16])
    def test_every_rank_has_all(self, fn, size):
        res = run_spmd(_prog(fn), size, params=PARAMS)
        expected = [float(i) for i in range(size)]
        for value in res.return_values:
            assert value == expected

    def test_rd_falls_back_for_non_powers(self):
        # Size 6 is not a power of two; result must still be complete.
        res = run_spmd(_prog(allgather_rd), 6, params=PARAMS)
        assert res.return_values[0] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_rd_fewer_rounds_than_ring(self):
        """Recursive doubling is log2(p) rounds vs the ring's p-1."""
        res_ring = run_spmd(_prog(allgather_ring), 16, params=PARAMS)
        res_rd = run_spmd(_prog(allgather_rd), 16, params=PARAMS)
        assert res_rd.total_time < res_ring.total_time

    def test_ring_message_count(self):
        res = run_spmd(_prog(allgather_ring), 8, params=PARAMS)
        # Each of 8 ranks forwards 7 times.
        assert res.total_messages == 8 * 7

    def test_generic_python_payload(self):
        def prog(ctx):
            out = yield from ctx.world.allgather(f"r{ctx.rank}")
            return out

        res = run_spmd(prog, 4, params=PARAMS)
        assert res.return_values[2] == ["r0", "r1", "r2", "r3"]
