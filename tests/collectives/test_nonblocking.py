"""Split-phase (nonblocking) broadcast: phase protocol, delivery,
out-of-order completion of concurrent broadcasts, and error paths."""

import numpy as np
import pytest

from repro.collectives.nonblocking import IBcast
from repro.errors import CommunicatorError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


def _simple(root, payload_factory):
    def prog(ctx):
        b = IBcast(ctx.world, root)
        yield from b.post()
        obj = payload_factory() if ctx.rank == root else None
        out = yield from b.complete(obj)
        yield from b.finish()
        return out

    return prog


class TestDelivery:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13, 16])
    def test_all_ranks_receive(self, size):
        res = run_spmd(_simple(0, lambda: np.arange(24.0)), size,
                       params=PARAMS)
        for value in res.return_values:
            assert np.array_equal(value, np.arange(24.0))

    @pytest.mark.parametrize("root", [0, 1, 3, 6])
    def test_nonzero_roots(self, root):
        res = run_spmd(_simple(root, lambda: np.full(6, float(root))), 7,
                       params=PARAMS)
        for value in res.return_values:
            assert np.array_equal(value, np.full(6, float(root)))

    def test_phantom_payload(self):
        res = run_spmd(_simple(0, lambda: PhantomArray((4, 4))), 6,
                       params=PARAMS)
        for value in res.return_values:
            assert isinstance(value, PhantomArray)

    def test_matches_blocking_binomial_timing(self):
        """Post-then-complete with no interleaved work moves the same
        bytes over the same tree as the blocking binomial broadcast."""

        def blocking(ctx):
            obj = np.zeros(512) if ctx.rank == 0 else None
            out = yield from ctx.world.bcast(obj, root=0,
                                             algorithm="binomial")
            return out

        split = run_spmd(_simple(0, lambda: np.zeros(512)), 8, params=PARAMS)
        ref = run_spmd(blocking, 8, params=PARAMS)
        assert split.total_messages == ref.total_messages
        assert split.total_bytes == ref.total_bytes


class TestRootSkip:
    def test_root_post_is_noop(self):
        """The root has no parent: post() must yield no requests and
        complete() must not wait on anything."""

        def prog(ctx):
            b = IBcast(ctx.world, 0)
            if ctx.rank == 0:
                assert b._parent() is None
            yield from b.post()
            if ctx.rank == 0:
                assert b._recv_handle is None
            out = yield from b.complete(
                np.arange(4.0) if ctx.rank == 0 else None)
            yield from b.finish()
            return out

        res = run_spmd(prog, 4, params=PARAMS)
        assert np.array_equal(res.return_values[0], np.arange(4.0))

    def test_single_rank_broadcast_is_free(self):
        res = run_spmd(_simple(0, lambda: np.zeros(100)), 1, params=PARAMS)
        assert res.total_time == 0.0


class TestOutOfOrderCompletion:
    def test_two_broadcasts_completed_in_reverse(self):
        """Both broadcasts are posted up front, then completed in the
        opposite order; tag salts keep the payloads apart."""

        def prog(ctx):
            b0 = IBcast(ctx.world, 0, tag_salt=0)
            b1 = IBcast(ctx.world, 0, tag_salt=1)
            yield from b0.post()
            yield from b1.post()
            second = yield from b1.complete(
                np.full(8, 2.0) if ctx.rank == 0 else None)
            first = yield from b0.complete(
                np.full(8, 1.0) if ctx.rank == 0 else None)
            yield from b0.finish()
            yield from b1.finish()
            return (first, second)

        res = run_spmd(prog, 8, params=PARAMS)
        for first, second in res.return_values:
            assert np.array_equal(first, np.full(8, 1.0))
            assert np.array_equal(second, np.full(8, 2.0))

    def test_pipelined_rounds(self):
        """A rolling window of broadcasts (post k+1 before finishing k),
        as the overlap schedules use them."""

        def prog(ctx):
            rounds = 4
            bcasts = [IBcast(ctx.world, k % 2, tag_salt=k)
                      for k in range(rounds)]
            yield from bcasts[0].post()
            out = []
            for k in range(rounds):
                if k + 1 < rounds:
                    yield from bcasts[k + 1].post()
                payload = np.full(4, float(k)) if ctx.rank == k % 2 else None
                out.append((yield from bcasts[k].complete(payload)))
            for b in bcasts:
                yield from b.finish()
            return out

        res = run_spmd(prog, 6, params=PARAMS)
        for per_rank in res.return_values:
            for k, value in enumerate(per_rank):
                assert np.array_equal(value, np.full(4, float(k)))


class TestFinish:
    def test_finish_drains_send_handles(self):
        def prog(ctx):
            b = IBcast(ctx.world, 0)
            yield from b.post()
            yield from b.complete(np.zeros(16) if ctx.rank == 0 else None)
            had = len(b._send_handles)
            yield from b.finish()
            return (had, len(b._send_handles))

        res = run_spmd(prog, 8, params=PARAMS)
        # Interior nodes had outstanding sends; afterwards nobody does.
        assert any(had > 0 for had, _ in res.return_values)
        assert all(left == 0 for _, left in res.return_values)

    def test_finish_idempotent(self):
        def prog(ctx):
            b = IBcast(ctx.world, 0)
            yield from b.post()
            out = yield from b.complete(
                np.zeros(4) if ctx.rank == 0 else None)
            yield from b.finish()
            yield from b.finish()  # second call must be a no-op
            return out

        res = run_spmd(prog, 4, params=PARAMS)
        for value in res.return_values:
            assert np.array_equal(value, np.zeros(4))


class TestErrorPaths:
    def test_bad_root_rejected(self):
        def prog(ctx):
            IBcast(ctx.world, 9)
            yield from ctx.compute(0.0)

        with pytest.raises(CommunicatorError, match="root 9"):
            run_spmd(prog, 4, params=PARAMS)

    def test_post_twice_rejected(self):
        def prog(ctx):
            b = IBcast(ctx.world, 0)
            yield from b.post()
            yield from b.post()

        with pytest.raises(CommunicatorError, match="post called twice"):
            run_spmd(prog, 2, params=PARAMS)

    def test_complete_before_post_rejected(self):
        def prog(ctx):
            b = IBcast(ctx.world, 0)
            yield from b.complete(np.zeros(2) if ctx.rank == 0 else None)

        with pytest.raises(CommunicatorError, match="before post"):
            run_spmd(prog, 2, params=PARAMS)

    def test_complete_twice_rejected(self):
        def prog(ctx):
            b = IBcast(ctx.world, 0)
            yield from b.post()
            yield from b.complete(np.zeros(2) if ctx.rank == 0 else None)
            yield from b.complete(np.zeros(2) if ctx.rank == 0 else None)

        with pytest.raises(CommunicatorError, match="complete called twice"):
            run_spmd(prog, 2, params=PARAMS)
