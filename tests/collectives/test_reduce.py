"""Tests for reduce / allreduce."""

import numpy as np
import pytest

from repro.collectives.reduce import allreduce_rd, reduce_binomial, reduce_flat
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestReduce:
    @pytest.mark.parametrize("fn", [reduce_binomial, reduce_flat])
    @pytest.mark.parametrize("size,root", [(1, 0), (2, 0), (4, 3), (7, 2), (16, 0)])
    def test_sum_on_root(self, fn, size, root):
        def prog(ctx):
            out = yield from fn(ctx.world, np.full(3, float(ctx.rank)), root)
            return None if out is None else float(out[0])

        res = run_spmd(prog, size, params=PARAMS)
        expected = float(sum(range(size)))
        for r, value in enumerate(res.return_values):
            if r == root:
                assert value == pytest.approx(expected)
            else:
                assert value is None

    def test_binomial_faster_than_flat(self):
        def mk(fn):
            def prog(ctx):
                yield from fn(ctx.world, np.zeros(1000), 0)

            return prog

        t_b = run_spmd(mk(reduce_binomial), 16, params=PARAMS).total_time
        t_f = run_spmd(mk(reduce_flat), 16, params=PARAMS).total_time
        assert t_b < t_f

    def test_phantom_reduction(self):
        def prog(ctx):
            out = yield from reduce_binomial(
                ctx.world, PhantomArray((4, 4)), 0
            )
            return out

        res = run_spmd(prog, 4, params=PARAMS)
        assert isinstance(res.return_values[0], PhantomArray)
        assert res.return_values[0].shape == (4, 4)


class TestAllreduce:
    @pytest.mark.parametrize("size", [1, 2, 4, 8, 16])
    def test_power_of_two(self, size):
        def prog(ctx):
            out = yield from allreduce_rd(ctx.world, np.full(2, 1.0))
            return float(out[0])

        res = run_spmd(prog, size, params=PARAMS)
        assert all(v == pytest.approx(float(size)) for v in res.return_values)

    @pytest.mark.parametrize("size", [3, 5, 6, 7])
    def test_non_power_of_two_fallback(self, size):
        def prog(ctx):
            out = yield from allreduce_rd(ctx.world, np.full(2, 2.0))
            return float(out[0])

        res = run_spmd(prog, size, params=PARAMS)
        assert all(v == pytest.approx(2.0 * size) for v in res.return_values)
