"""Tests for the extra collectives (Bruck, reduce-scatter, Rabenseifner)."""

import numpy as np
import pytest

from repro.collectives.allgather import allgather_ring
from repro.collectives.extra import (
    allgather_bruck,
    allreduce_rabenseifner,
    reduce_scatter_ring,
)
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray, join_payload
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestBruck:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 8, 13, 16])
    def test_complete_for_any_size(self, size):
        def prog(ctx):
            out = yield from allgather_bruck(ctx.world, float(ctx.rank))
            return out

        res = run_spmd(prog, size, params=PARAMS)
        for out in res.return_values:
            assert out == [float(i) for i in range(size)]

    def test_logarithmic_rounds_beat_ring_latency(self):
        def bruck(ctx):
            yield from allgather_bruck(ctx.world, 1.0)

        def ring(ctx):
            yield from allgather_ring(ctx.world, 1.0)

        t_b = run_spmd(bruck, 16, params=PARAMS).total_time
        t_r = run_spmd(ring, 16, params=PARAMS).total_time
        assert t_b < t_r

    def test_array_payloads(self):
        def prog(ctx):
            out = yield from allgather_bruck(
                ctx.world, np.full(3, float(ctx.rank))
            )
            return [float(v[0]) for v in out]

        res = run_spmd(prog, 6, params=PARAMS)
        assert res.return_values[3] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


class TestReduceScatter:
    @pytest.mark.parametrize("size", [1, 2, 4, 5, 8])
    def test_chunks_sum_correctly(self, size):
        def prog(ctx):
            seg = yield from reduce_scatter_ring(
                ctx.world, np.arange(16.0) + ctx.rank
            )
            return seg

        res = run_spmd(prog, size, params=PARAMS)
        expected = size * np.arange(16.0) + sum(range(size))
        segs = res.return_values
        total = join_payload(segs) if size > 1 else join_payload([segs[0]])
        assert np.allclose(total, expected)

    def test_each_rank_distinct_chunk(self):
        def prog(ctx):
            seg = yield from reduce_scatter_ring(ctx.world, np.arange(8.0))
            return seg.index

        res = run_spmd(prog, 4, params=PARAMS)
        assert sorted(res.return_values) == [0, 1, 2, 3]

    def test_phantom(self):
        def prog(ctx):
            seg = yield from reduce_scatter_ring(
                ctx.world, PhantomArray((4, 4))
            )
            return seg.phantom

        res = run_spmd(prog, 4, params=PARAMS)
        assert all(res.return_values)


class TestRabenseifner:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 8, 9])
    def test_matches_sum(self, size):
        def prog(ctx):
            out = yield from allreduce_rabenseifner(
                ctx.world, np.full(12, float(ctx.rank + 1))
            )
            return out

        res = run_spmd(prog, size, params=PARAMS)
        expected = float(sum(range(1, size + 1)))
        for out in res.return_values:
            assert out.shape == (12,)
            assert np.allclose(out, expected)

    def test_bandwidth_beats_reduce_bcast_for_large_messages(self):
        from repro.collectives.reduce import reduce_binomial

        nelems = 1 << 18

        def rab(ctx):
            yield from allreduce_rabenseifner(ctx.world, np.ones(nelems))

        def red_bcast(ctx):
            acc = yield from reduce_binomial(ctx.world, np.ones(nelems), 0)
            yield from ctx.world.bcast(acc, 0)

        t_rab = run_spmd(rab, 8, params=PARAMS).total_time
        t_rb = run_spmd(red_bcast, 8, params=PARAMS).total_time
        assert t_rab < t_rb

    def test_registry_dispatch(self):
        """The comm layer dispatches allreduce/allgather by name."""
        from repro.mpi.comm import CollectiveOptions

        def prog(ctx):
            total = yield from ctx.world.allreduce(
                np.ones(8), algorithm="rabenseifner"
            )
            ag = yield from ctx.world.allgather(ctx.rank, algorithm="bruck")
            return (float(total[0]), ag)

        res = run_spmd(prog, 4, params=PARAMS,
                       options=CollectiveOptions(allreduce="rabenseifner"))
        for total, ag in res.return_values:
            assert total == pytest.approx(4.0)
            assert ag == [0, 1, 2, 3]

    def test_unknown_allreduce_rejected(self):
        from repro.collectives import get_allreduce
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="allreduce"):
            get_allreduce("nope")

    def test_shape_preserved(self):
        def prog(ctx):
            out = yield from allreduce_rabenseifner(
                ctx.world, np.ones((6, 4))
            )
            return out.shape

        res = run_spmd(prog, 4, params=PARAMS)
        assert all(shape == (6, 4) for shape in res.return_values)
