"""Tests for every broadcast algorithm: delivery, roots, sizes, timing."""

import numpy as np
import pytest

from repro.collectives import BROADCAST_ALGORITHMS
from repro.collectives.bcast import optimal_pipeline_segments
from repro.collectives.cost import bcast_time
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
ALGOS = sorted(BROADCAST_ALGORITHMS)


def _bcast_prog(algorithm, root, payload_factory):
    def prog(ctx):
        payload = payload_factory() if ctx.rank == root else None
        out = yield from ctx.world.bcast(payload, root=root, algorithm=algorithm)
        return out

    return prog


class TestDelivery:
    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13, 16])
    def test_all_ranks_receive(self, algorithm, size):
        prog = _bcast_prog(algorithm, 0, lambda: np.arange(24.0))
        res = run_spmd(prog, size, params=PARAMS)
        for value in res.return_values:
            assert np.allclose(value, np.arange(24.0))

    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("root", [0, 1, 3, 6])
    def test_nonzero_roots(self, algorithm, root):
        prog = _bcast_prog(algorithm, root, lambda: np.full(10, float(root)))
        res = run_spmd(prog, 7, params=PARAMS)
        for value in res.return_values:
            assert np.allclose(value, root)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_2d_payload_shape_preserved(self, algorithm):
        prog = _bcast_prog(algorithm, 2, lambda: np.arange(30.0).reshape(5, 6))
        res = run_spmd(prog, 6, params=PARAMS)
        for value in res.return_values:
            assert value.shape == (5, 6)
            assert np.allclose(value, np.arange(30.0).reshape(5, 6))

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_phantom_payload(self, algorithm):
        prog = _bcast_prog(algorithm, 0, lambda: PhantomArray((8, 8)))
        res = run_spmd(prog, 6, params=PARAMS)
        for value in res.return_values:
            assert isinstance(value, PhantomArray)
            assert value.shape == (8, 8)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_tiny_payload_many_ranks(self, algorithm):
        """Segmented algorithms must survive messages smaller than the
        rank count (empty segments)."""
        prog = _bcast_prog(algorithm, 0, lambda: np.arange(3.0))
        res = run_spmd(prog, 9, params=PARAMS)
        for value in res.return_values:
            assert np.allclose(value, np.arange(3.0))


class TestTiming:
    @pytest.mark.parametrize("algorithm", ["binomial", "flat", "chain", "vandegeijn"])
    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_des_matches_closed_form(self, algorithm, size):
        """The executable schedule must cost exactly the closed form the
        paper's analysis uses.  512 elements split evenly for every
        tested size, so the segmented algorithm sees the ideal m/p."""
        prog = _bcast_prog(algorithm, 0, lambda: np.zeros(512))
        res = run_spmd(prog, size, params=PARAMS)
        assert res.total_time == pytest.approx(
            bcast_time(algorithm, 4096, size, PARAMS)
        )

    def test_binomial_beats_flat_at_scale(self):
        big = _bcast_prog("binomial", 0, lambda: np.zeros(100))
        flat = _bcast_prog("flat", 0, lambda: np.zeros(100))
        t_b = run_spmd(big, 16, params=PARAMS).total_time
        t_f = run_spmd(flat, 16, params=PARAMS).total_time
        assert t_b < t_f

    def test_vandegeijn_beats_binomial_for_large_messages(self):
        """The reason the paper pairs HSUMMA with vdg: better bandwidth."""
        big = 1 << 20  # elements
        t_b = bcast_time("binomial", big * 8, 64, PARAMS)
        t_v = bcast_time("vandegeijn", big * 8, 64, PARAMS)
        assert t_v < t_b

    def test_binomial_beats_vandegeijn_for_small_messages(self):
        t_b = bcast_time("binomial", 64, 64, PARAMS)
        t_v = bcast_time("vandegeijn", 64, 64, PARAMS)
        assert t_b < t_v

    def test_pipelined_beats_chain_for_large_messages(self):
        prog_p = _bcast_prog("pipelined", 0, lambda: np.zeros(100_000))
        prog_c = _bcast_prog("chain", 0, lambda: np.zeros(100_000))
        t_p = run_spmd(prog_p, 8, params=PARAMS).total_time
        t_c = run_spmd(prog_c, 8, params=PARAMS).total_time
        assert t_p < t_c

    def test_single_rank_is_free(self):
        for algorithm in ALGOS:
            prog = _bcast_prog(algorithm, 0, lambda: np.zeros(100))
            res = run_spmd(prog, 1, params=PARAMS)
            assert res.total_time == 0.0


class TestPipelineSegments:
    def test_optimal_formula(self):
        s = optimal_pipeline_segments(1e6, 10, 1e-5, 1e-9)
        assert s == round((1e6 * 1e-9 * 8 / 1e-5) ** 0.5)

    def test_degenerate_cases(self):
        assert optimal_pipeline_segments(0, 10, 1e-5, 1e-9) == 1
        assert optimal_pipeline_segments(1e6, 2, 1e-5, 1e-9) == 1
        assert optimal_pipeline_segments(1e6, 1, 1e-5, 1e-9) == 1

    def test_explicit_segments_respected(self):
        def prog(ctx):
            ctx.options = ctx.options.replace(bcast_segments=4)
            data = np.zeros(1000) if ctx.rank == 0 else None
            out = yield from ctx.world.bcast(data, root=0, algorithm="pipelined")
            return out

        res = run_spmd(prog, 4, params=PARAMS)
        for v in res.return_values:
            assert np.allclose(v, 0.0)


class TestRegistry:
    def test_unknown_algorithm_rejected(self):
        from repro.collectives import get_broadcast
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown broadcast"):
            get_broadcast("nope")

    def test_all_registered(self):
        assert set(ALGOS) == {
            "binary", "binomial", "chain", "flat", "ft_binomial",
            "fourcolor", "hypersystolic", "pipelined", "segmented",
            "vandegeijn",
        }
