"""Tests for the analytic broadcast cost functions."""


import pytest

from repro.collectives.cost import (
    bcast_bandwidth_factor,
    bcast_latency_factor,
    bcast_time,
)
from repro.errors import ModelError
from repro.network.model import HockneyParams

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestFactors:
    def test_binomial_matches_paper(self):
        # Paper: log2(p) * (alpha + m beta).
        assert bcast_latency_factor("binomial", 64) == 6
        assert bcast_bandwidth_factor("binomial", 64) == 6

    def test_binomial_non_power(self):
        assert bcast_latency_factor("binomial", 5) == 3  # ceil(log2 5)

    def test_vandegeijn_matches_paper(self):
        # Paper: (log2 p + p - 1) alpha + 2 (p-1)/p m beta.
        p = 16
        assert bcast_latency_factor("vandegeijn", p) == 4 + 15
        assert bcast_bandwidth_factor("vandegeijn", p) == pytest.approx(2 * 15 / 16)

    def test_flat_and_chain_linear(self):
        assert bcast_latency_factor("flat", 9) == 8
        assert bcast_latency_factor("chain", 9) == 8

    def test_single_rank_zero(self):
        for algo in ("binomial", "vandegeijn", "flat", "chain", "binary"):
            assert bcast_latency_factor(algo, 1) == 0.0
            assert bcast_bandwidth_factor(algo, 1) == 0.0

    def test_unknown_algorithm(self):
        with pytest.raises(ModelError):
            bcast_latency_factor("pipelined", 8)  # no closed L/W form

    def test_invalid_p(self):
        with pytest.raises(ModelError):
            bcast_latency_factor("binomial", 0)


class TestBcastTime:
    def test_formula(self):
        t = bcast_time("binomial", 1000, 8, PARAMS)
        assert t == pytest.approx(3 * (1e-4 + 1000 * 1e-9))

    def test_pipelined_uses_optimal_segments(self):
        m, p = 1_000_000, 16
        t_auto = bcast_time("pipelined", m, p, PARAMS)
        # Any explicit segment count must be >= the optimum.
        for s in (1, 4, 1000):
            assert t_auto <= bcast_time("pipelined", m, p, PARAMS, segments=s) + 1e-12

    def test_pipelined_segment_formula(self):
        t = bcast_time("pipelined", 1000, 4, PARAMS, segments=2)
        assert t == pytest.approx((4 - 2 + 2) * (1e-4 + 500 * 1e-9))

    def test_zero_message(self):
        assert bcast_time("binomial", 0, 8, PARAMS) == pytest.approx(3e-4)

    def test_negative_message_rejected(self):
        with pytest.raises(ModelError):
            bcast_time("binomial", -1, 8, PARAMS)

    def test_p1_free(self):
        assert bcast_time("vandegeijn", 1e9, 1, PARAMS) == 0.0
