"""Tests for the all-to-all algorithms."""

import numpy as np
import pytest

from repro.collectives.alltoall import alltoall_bruck, alltoall_pairwise
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


def _prog(fn):
    def prog(ctx):
        size = ctx.world.size
        parts = [f"{ctx.rank}->{d}" for d in range(size)]
        out = yield from fn(ctx.world, parts)
        return out

    return prog


class TestAlltoall:
    @pytest.mark.parametrize("fn", [alltoall_pairwise, alltoall_bruck])
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 16])
    def test_personalised_delivery(self, fn, size):
        res = run_spmd(_prog(fn), size, params=PARAMS)
        for r, out in enumerate(res.return_values):
            assert out == [f"{s}->{r}" for s in range(size)]

    @pytest.mark.parametrize("fn", [alltoall_pairwise, alltoall_bruck])
    def test_array_payloads(self, fn):
        def prog(ctx):
            size = ctx.world.size
            parts = [np.full(2, 10.0 * ctx.rank + d) for d in range(size)]
            out = yield from fn(ctx.world, parts)
            return [float(v[0]) for v in out]

        res = run_spmd(prog, 4, params=PARAMS)
        assert res.return_values[2] == [2.0, 12.0, 22.0, 32.0]

    def test_wrong_part_count_rejected(self):
        def prog(ctx):
            yield from alltoall_pairwise(ctx.world, [1, 2])

        with pytest.raises(ConfigurationError):
            run_spmd(prog, 4, params=PARAMS)

    def test_bruck_lower_latency_small_messages(self):
        """Bruck's log rounds beat pairwise's p-1 for tiny payloads."""
        t_b = run_spmd(_prog(alltoall_bruck), 16, params=PARAMS).total_time
        t_p = run_spmd(_prog(alltoall_pairwise), 16, params=PARAMS).total_time
        assert t_b < t_p

    def test_pairwise_moves_less_data(self):
        """Each pairwise item crosses the wire once; Bruck forwards."""
        res_p = run_spmd(_prog(alltoall_pairwise), 8, params=PARAMS)
        res_b = run_spmd(_prog(alltoall_bruck), 8, params=PARAMS)
        assert res_p.total_bytes < res_b.total_bytes
