"""Shared broadcast-conformance harness.

Every test that takes the ``bcast_algorithm`` fixture sweeps the full
registry (:data:`repro.collectives.BROADCAST_ALGORITHMS`): registering
a new broadcast algorithm automatically enrolls it in the conformance
suite in ``test_pipelined.py`` — payload bit-identity across comm
sizes/roots/dtypes/segment counts and backends, ``repro.verify``
cleanliness, closed-form/DES cost agreement — with no test edits.
"""

import numpy as np
import pytest

from repro.collectives import BROADCAST_ALGORITHMS
from repro.network.model import HockneyParams
from repro.simulator import run_spmd

#: Hockney point shared by the conformance assertions.
CONFORMANCE_PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)

#: Algorithms whose DES makespan must equal the registry closed form
#: *exactly* on segment-divisible payloads.  ``binary``'s registry
#: entry (``2*floor(log2 p)`` rounds) deliberately over-estimates the
#: executable tree, and ``ft_binomial`` has no closed form at all
#: (both are asserted separately).
EXACT_COST = frozenset({
    "flat", "chain", "binomial", "vandegeijn",
    "pipelined", "segmented", "fourcolor", "hypersystolic",
})


class BcastHarness:
    """Builds and runs one-broadcast SPMD programs for conformance."""

    params = CONFORMANCE_PARAMS
    exact_cost = EXACT_COST

    @staticmethod
    def program(algorithm, root, payload_factory, segments=None):
        def prog(ctx):
            if segments is not None:
                ctx.options = ctx.options.replace(bcast_segments=segments)
            payload = payload_factory() if ctx.rank == root else None
            out = yield from ctx.world.bcast(payload, root=root,
                                             algorithm=algorithm)
            return out

        return prog

    @classmethod
    def run(cls, algorithm, size, *, root=0, payload_factory=None,
            segments=None, **kwargs):
        factory = payload_factory or (lambda: np.arange(64.0))
        prog = cls.program(algorithm, root, factory, segments=segments)
        kwargs.setdefault("params", cls.params)
        return run_spmd(prog, size, **kwargs)


@pytest.fixture(params=sorted(BROADCAST_ALGORITHMS))
def bcast_algorithm(request):
    """Every registered broadcast algorithm, by registration alone."""
    return request.param


@pytest.fixture
def bcast_harness():
    return BcastHarness
