"""Tests for scatter and gather algorithms."""

import numpy as np
import pytest

from repro.collectives.gather import gather_binomial, gather_linear
from repro.collectives.scatter import scatter_binomial, scatter_linear, split_path
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestSplitPath:
    def test_covers_range(self):
        for size in (2, 3, 5, 8, 13):
            for vr in range(size):
                lo, hi = 0, size
                for plo, pmid, phi in split_path(size, vr):
                    assert plo == lo and phi == hi
                    assert lo < pmid < hi
                    if vr < pmid:
                        hi = pmid
                    else:
                        lo = pmid
                assert (lo, hi) == (vr, vr + 1)

    def test_single_rank_empty(self):
        assert split_path(1, 0) == []

    def test_depth_logarithmic(self):
        assert len(split_path(16, 0)) == 4
        assert len(split_path(16, 15)) <= 4


def _scatter_prog(fn, root, size):
    def prog(ctx):
        parts = None
        if ctx.rank == root:
            parts = [np.full(3, float(i)) for i in range(size)]
        mine = yield from fn(ctx.world, parts, root)
        return mine

    return prog


class TestScatter:
    @pytest.mark.parametrize("fn", [scatter_binomial, scatter_linear])
    @pytest.mark.parametrize("size,root", [(1, 0), (2, 0), (4, 0), (5, 2), (8, 7), (11, 3)])
    def test_each_rank_gets_its_part(self, fn, size, root):
        res = run_spmd(_scatter_prog(fn, root, size), size, params=PARAMS)
        for r, value in enumerate(res.return_values):
            assert np.allclose(value, float(r)), (r, value)

    def test_wrong_part_count_rejected(self):
        def prog(ctx):
            parts = [1.0] if ctx.rank == 0 else None
            yield from scatter_binomial(ctx.world, parts, 0)

        with pytest.raises(ConfigurationError):
            run_spmd(prog, 4, params=PARAMS)

    def test_tree_scatter_latency_logarithmic(self):
        """The root should complete after ~log2(p) sends, not p-1."""
        size = 16
        res_tree = run_spmd(
            _scatter_prog(scatter_binomial, 0, size), size, params=PARAMS
        )
        res_lin = run_spmd(
            _scatter_prog(scatter_linear, 0, size), size, params=PARAMS
        )
        assert res_tree.total_time < res_lin.total_time


def _gather_prog(fn, root):
    def prog(ctx):
        out = yield from fn(ctx.world, np.full(2, float(ctx.rank)), root)
        return None if out is None else [float(v[0]) for v in out]

    return prog


class TestGather:
    @pytest.mark.parametrize("fn", [gather_binomial, gather_linear])
    @pytest.mark.parametrize("size,root", [(1, 0), (2, 1), (4, 0), (5, 4), (9, 2), (16, 0)])
    def test_root_collects_in_rank_order(self, fn, size, root):
        res = run_spmd(_gather_prog(fn, root), size, params=PARAMS)
        for r, value in enumerate(res.return_values):
            if r == root:
                assert value == [float(i) for i in range(size)]
            else:
                assert value is None

    def test_gather_inverse_of_scatter(self):
        def prog(ctx):
            size = ctx.world.size
            parts = [np.full(2, float(i)) for i in range(size)] if ctx.rank == 0 else None
            mine = yield from scatter_binomial(ctx.world, parts, 0)
            back = yield from gather_binomial(ctx.world, mine, 0)
            if ctx.rank == 0:
                return [float(v[0]) for v in back]
            return None

        res = run_spmd(prog, 7, params=PARAMS)
        assert res.return_values[0] == [float(i) for i in range(7)]
