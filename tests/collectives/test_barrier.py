"""Tests for the dissemination barrier."""

import pytest

from repro.network.model import HockneyParams
from repro.simulator import run_spmd
from repro.simulator.requests import ComputeRequest

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestBarrier:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 16])
    def test_completes(self, size):
        def prog(ctx):
            yield from ctx.world.barrier()
            return "past"

        res = run_spmd(prog, size, params=PARAMS)
        assert res.return_values == ["past"] * size

    def test_synchronises_slowest_rank(self):
        """No rank may leave the barrier before the slowest arrives."""

        def prog(ctx):
            if ctx.rank == 0:
                yield ComputeRequest(1.0)
            yield from ctx.world.barrier()
            return None

        res = run_spmd(prog, 4, params=PARAMS)
        for s in res.stats:
            assert s.clock >= 1.0

    def test_round_count_logarithmic(self):
        def prog(ctx):
            yield from ctx.world.barrier()

        res = run_spmd(prog, 8, params=PARAMS)
        # Dissemination: p messages per round, ceil(log2 p) rounds.
        assert res.total_messages == 8 * 3

    def test_single_rank_no_messages(self):
        def prog(ctx):
            yield from ctx.world.barrier()

        res = run_spmd(prog, 1, params=PARAMS)
        assert res.total_messages == 0
        assert res.total_time == 0.0
