"""Tests for the platform presets."""

import pytest

from repro.errors import ConfigurationError
from repro.network.torus import Torus3D
from repro.network.tree import SwitchedCluster
from repro.platforms import bluegene_p, exascale_2012, grid5000_graphene
from repro.platforms.base import WORD_BYTES
from repro.platforms.bluegene import RANKS_PER_NODE, torus_dims_for


class TestGrid5000:
    def test_paper_validation_parameters(self):
        p = grid5000_graphene()
        assert p.alpha == pytest.approx(1e-4)
        # Per-element reciprocal bandwidth: the paper's 1e-9.
        assert p.model_beta == pytest.approx(1e-9)

    def test_network_is_switched_cluster(self):
        net = grid5000_graphene(64).network(64)
        assert isinstance(net, SwitchedCluster)
        assert net.nranks == 64

    def test_defaults(self):
        p = grid5000_graphene()
        assert p.default_n == 8192
        assert p.options.bcast == "vandegeijn"

    def test_grid(self):
        assert grid5000_graphene(128).grid() == (8, 16)


class TestBlueGene:
    def test_paper_validation_parameters(self):
        p = bluegene_p()
        assert p.alpha == pytest.approx(3e-6)
        assert p.model_beta == pytest.approx(1e-9)

    def test_threshold_passes_like_paper(self):
        """alpha/model_beta = 3000 > 2nb/p = 2048 (Section V-B-1)."""
        p = bluegene_p()
        assert p.alpha / p.model_beta > 2 * 65536 * 256 / 16384

    def test_network_is_vn_mode_torus(self):
        net = bluegene_p(2048).network(2048)
        assert isinstance(net, Torus3D)
        assert net.nranks == 2048
        assert net.mapping.nnodes == 2048 // RANKS_PER_NODE

    def test_non_vn_rank_count_rejected(self):
        with pytest.raises(ConfigurationError):
            bluegene_p().network(2047)

    def test_grid_16384(self):
        assert bluegene_p().grid() == (128, 128)


class TestTorusDims:
    def test_cubes(self):
        assert torus_dims_for(4096) == (16, 16, 16)
        assert torus_dims_for(8) == (2, 2, 2)

    def test_non_cube(self):
        dims = torus_dims_for(512)
        x, y, z = dims
        assert x * y * z == 512
        assert x <= y <= z

    def test_near_cubic_choice(self):
        # 1024 = 8*8*16 is the most cubic factorisation.
        assert torus_dims_for(1024) == (8, 8, 16)

    def test_one(self):
        assert torus_dims_for(1) == (1, 1, 1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            torus_dims_for(0)


class TestExascale:
    def test_roadmap_parameters(self):
        p = exascale_2012()
        assert p.alpha == pytest.approx(500e-9)
        assert p.params.beta == pytest.approx(1e-11)  # 100 GB/s
        assert p.model_beta == pytest.approx(WORD_BYTES * 1e-11)

    def test_gamma_is_machine_share(self):
        p = exascale_2012()
        assert p.gamma == pytest.approx(2**20 / 1e18)

    def test_nranks(self):
        assert exascale_2012().nranks == 2**20


class TestPlatformBase:
    def test_network_size_validation(self):
        p = grid5000_graphene()
        with pytest.raises(ConfigurationError):
            p.network(0)
