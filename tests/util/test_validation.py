"""Unit tests for repro.util.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    require,
    require_divides,
    require_positive,
    require_power_of_two,
    require_type,
)


class TestRequire:
    def test_pass(self):
        require(True, "never raised")

    def test_fail_message(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_positive_ok(self):
        require_positive(0.5, "x")

    def test_zero_fails(self):
        with pytest.raises(ConfigurationError, match="x"):
            require_positive(0, "x")

    def test_negative_fails(self):
        with pytest.raises(ConfigurationError):
            require_positive(-1, "x")


class TestRequireDivides:
    def test_divides(self):
        require_divides(4, 12, "ctx")

    def test_not_divides(self):
        with pytest.raises(ConfigurationError, match="ctx"):
            require_divides(5, 12, "ctx")

    def test_zero_divisor(self):
        with pytest.raises(ConfigurationError):
            require_divides(0, 12, "ctx")


class TestRequirePowerOfTwo:
    def test_ok(self):
        require_power_of_two(8, "n")

    def test_fails(self):
        with pytest.raises(ConfigurationError, match="n"):
            require_power_of_two(12, "n")


class TestRequireType:
    def test_ok(self):
        require_type(3, int, "v")

    def test_tuple_of_types(self):
        require_type(3.5, (int, float), "v")

    def test_fails(self):
        with pytest.raises(ConfigurationError, match="v"):
            require_type("s", int, "v")
