"""Unit tests for repro.util.gridmath."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.util.gridmath import (
    ceil_div,
    chunk_bounds,
    divisors,
    factor_grid,
    is_perfect_square,
    is_power_of_two,
    lcm,
    nearest_power_of_two,
    split_evenly,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ConfigurationError):
            ceil_div(1, 0)

    def test_rejects_negative_divisor(self):
        with pytest.raises(ConfigurationError):
            ceil_div(1, -2)


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12

    def test_coprime(self):
        assert lcm(7, 5) == 35

    def test_zero(self):
        assert lcm(0, 5) == 0

    def test_pumma_style(self):
        # The PUMMA analysis uses LCM(P, Q) of the grid dimensions.
        assert lcm(8, 16) == 16


class TestPowersOfTwo:
    def test_one_is_power(self):
        assert is_power_of_two(1)

    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, 3, 6, 12, 100, -4):
            assert not is_power_of_two(n)

    def test_nearest_exact(self):
        assert nearest_power_of_two(64) == 64

    def test_nearest_rounds(self):
        assert nearest_power_of_two(5) == 4
        assert nearest_power_of_two(7) == 8

    def test_nearest_tie_rounds_down(self):
        assert nearest_power_of_two(6) == 4  # equidistant from 4 and 8

    def test_nearest_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            nearest_power_of_two(0)


class TestPerfectSquare:
    def test_squares(self):
        for r in (0, 1, 2, 11, 128):
            assert is_perfect_square(r * r)

    def test_non_squares(self):
        for n in (2, 3, 5, 127, 16383):
            assert not is_perfect_square(n)

    def test_negative(self):
        assert not is_perfect_square(-4)


class TestDivisors:
    def test_twelve(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_prime(self):
        assert divisors(13) == [1, 13]

    def test_one(self):
        assert divisors(1) == [1]

    def test_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            divisors(0)

    def test_sorted_and_complete(self):
        n = 360
        ds = divisors(n)
        assert ds == sorted(ds)
        assert all(n % d == 0 for d in ds)
        assert len(ds) == sum(1 for d in range(1, n + 1) if n % d == 0)


class TestFactorGrid:
    def test_square(self):
        assert factor_grid(36) == (6, 6)

    def test_paper_p128(self):
        assert factor_grid(128) == (8, 16)

    def test_paper_p16384(self):
        assert factor_grid(16384) == (128, 128)

    def test_prime(self):
        assert factor_grid(13) == (1, 13)

    def test_one(self):
        assert factor_grid(1) == (1, 1)

    def test_s_le_t_and_product(self):
        for p in range(1, 200):
            s, t = factor_grid(p)
            assert s * t == p
            assert s <= t

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            factor_grid(0)


class TestSplitEvenly:
    def test_even(self):
        assert split_evenly(12, 3) == [4, 4, 4]

    def test_remainder_goes_first(self):
        assert split_evenly(10, 3) == [4, 3, 3]

    def test_more_parts_than_items(self):
        assert split_evenly(2, 5) == [1, 1, 0, 0, 0]

    def test_sum_invariant(self):
        for total in (0, 1, 7, 100):
            for parts in (1, 2, 3, 9):
                assert sum(split_evenly(total, parts)) == total

    def test_rejects_zero_parts(self):
        with pytest.raises(ConfigurationError):
            split_evenly(5, 0)


class TestChunkBounds:
    def test_bounds_cover(self):
        bounds = list(chunk_bounds(10, 3))
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_contiguous(self):
        bounds = list(chunk_bounds(17, 5))
        for (a0, a1), (b0, _b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 17
