"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_headers_present(self):
        out = format_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_numeric_right_aligned(self):
        out = format_table(["v"], [[1], [100]])
        rows = out.splitlines()[-2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_text_left_aligned(self):
        out = format_table(["name", "v"], [["ab", 1], ["c", 22]])
        body = out.splitlines()[-2:]
        assert body[0].startswith("ab")
        assert body[1].startswith("c ")

    def test_float_shortening(self):
        out = format_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_tiny_float_scientific(self):
        out = format_table(["v"], [[1.5e-7]])
        assert "1.5e-07" in out

    def test_zero(self):
        out = format_table(["v"], [[0.0]])
        assert out.splitlines()[-1].strip() == "0"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_bool_not_numeric(self):
        # Booleans render as text, not right-aligned numbers.
        out = format_table(["flag"], [[True], [False]])
        assert "True" in out and "False" in out
