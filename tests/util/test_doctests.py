"""Execute the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.hetero.partition
import repro.util.gridmath

MODULES = [
    repro.util.gridmath,
    repro.hetero.partition,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "expected at least one doctest example"
