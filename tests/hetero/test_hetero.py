"""Tests for the heterogeneous 1-D SUMMA and proportional partitioning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hetero import proportional_partition, run_hetero_summa1d
from repro.hetero.partition import partition_bounds
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


class TestProportionalPartition:
    def test_exact_ratio(self):
        assert proportional_partition(100, [1.0, 1.0, 2.0]) == [25, 25, 50]

    def test_sums_to_total(self):
        for total in (7, 64, 1001):
            for speeds in ([1, 2, 3], [0.3, 0.3, 0.4], [5, 1, 1, 1]):
                assert sum(proportional_partition(total, speeds)) == total

    def test_minimum_one_each(self):
        shares = proportional_partition(10, [1000.0, 1.0, 1.0])
        assert min(shares) >= 1
        assert sum(shares) == 10

    def test_uniform(self):
        assert proportional_partition(12, [1, 1, 1, 1]) == [3, 3, 3, 3]

    def test_largest_remainder(self):
        # Ideal shares 3.33.., so two ranks get 3, one gets 4.
        shares = proportional_partition(10, [1, 1, 1])
        assert sorted(shares) == [3, 3, 4]

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            proportional_partition(0, [1])
        with pytest.raises(ConfigurationError):
            proportional_partition(10, [])
        with pytest.raises(ConfigurationError):
            proportional_partition(10, [1, -1])
        with pytest.raises(ConfigurationError):
            proportional_partition(2, [1, 1, 1])

    def test_bounds_contiguous(self):
        bounds = partition_bounds(20, [1, 3])
        assert bounds == [(0, 5), (5, 20)]


class TestHeteroSumma1d:
    @pytest.mark.parametrize("speeds,groups", [
        ([1, 1, 1, 1], 1),
        ([1, 2, 3, 4], 1),
        ([1, 2, 3, 4], 2),
        ([1, 2, 3, 4], 4),
        ([1, 1, 2, 2, 4, 4], 3),
        ([5], 1),
    ])
    def test_correct(self, rng, speeds, groups):
        m, l, n = 24, 32, 40
        A = rng.standard_normal((m, l))
        B = rng.standard_normal((l, n))
        C, _ = run_hetero_summa1d(A, B, speeds=speeds, block=8,
                                  groups=groups, params=PARAMS)
        assert np.max(np.abs(C - A @ B)) < 1e-10

    def test_compute_load_balanced(self):
        """Speed-proportional widths equalise per-rank compute time."""
        _, sim = run_hetero_summa1d(
            PhantomArray((256, 256)), PhantomArray((256, 256)),
            speeds=[1, 2, 4, 8], block=32, params=PARAMS, base_gamma=1e-8,
        )
        comps = [s.compute_time for s in sim.stats]
        assert max(comps) / min(comps) < 1.05

    def test_balanced_beats_naive_partition(self):
        """A uniform split on a 1:8 machine leaves the slow rank as the
        straggler; the proportional split wins."""
        kwargs = dict(block=32, params=PARAMS, base_gamma=1e-8)
        A = PhantomArray((256, 256))
        B = PhantomArray((256, 256))
        speeds = [1, 2, 4, 8]
        _, balanced = run_hetero_summa1d(A, B, speeds=speeds, **kwargs)
        _, naive = run_hetero_summa1d(
            A, B, speeds=speeds, partition_speeds=[1, 1, 1, 1], **kwargs
        )
        assert balanced.total_time < naive.total_time * 0.75

    def test_hierarchical_groups_reduce_comm(self):
        """The HSUMMA two-phase trick composes with heterogeneity."""
        from repro.mpi.comm import CollectiveOptions

        opts = CollectiveOptions(bcast="vandegeijn")
        A = PhantomArray((512, 512))
        B = PhantomArray((512, 512))
        speeds = [1, 2] * 8  # 16 ranks
        kwargs = dict(block=16, params=HockneyParams(1e-4, 1e-9),
                      base_gamma=0.0, options=opts)
        _, flat = run_hetero_summa1d(A, B, speeds=speeds, groups=1, **kwargs)
        _, hier = run_hetero_summa1d(A, B, speeds=speeds, groups=4, **kwargs)
        assert hier.comm_time < flat.comm_time

    def test_phantom_mode(self):
        C, sim = run_hetero_summa1d(
            PhantomArray((64, 64)), PhantomArray((64, 64)),
            speeds=[1, 3], block=16, params=PARAMS,
        )
        assert isinstance(C, PhantomArray)
        assert sim.total_time > 0

    def test_partition_speeds_length_checked(self, rng):
        with pytest.raises(ConfigurationError):
            run_hetero_summa1d(
                rng.standard_normal((8, 8)), rng.standard_normal((8, 8)),
                speeds=[1, 1], partition_speeds=[1, 1, 1], block=4,
                params=PARAMS,
            )

    def test_groups_must_divide(self, rng):
        with pytest.raises(ConfigurationError):
            run_hetero_summa1d(
                rng.standard_normal((8, 8)), rng.standard_normal((8, 8)),
                speeds=[1, 1, 1], groups=2, block=4, params=PARAMS,
            )
