"""Segment-capacity clamp on the pipelined-broadcast closed form.

The analytic optimum ``S* = sqrt(base*m*beta/(chunks*rate*alpha))``
assumes infinitely many NIC slots; a real route holds at most
``base + rate`` segments.  ``optimal_pipeline_segments`` warns past
that capacity and clamps on request (docs/cost_model.md)."""

import warnings

import pytest

from repro.costs import (
    PipelineDepthWarning,
    max_pipeline_segments,
    optimal_pipeline_segments,
)
from repro.costs.registry import hypersystolic_depth, segmented_fill_slots
from repro.errors import ModelError


def test_capacity_per_algorithm():
    # pipelined chain: base p-2, rate 1
    assert max_pipeline_segments(16, "pipelined") == 15
    # segmented: tree fill minus 2, rate 2
    assert max_pipeline_segments(16, "segmented") == \
        segmented_fill_slots(16)
    # fourcolor shares the chain's shape
    assert max_pipeline_segments(16, "fourcolor") == 15
    # hypersystolic: D-1 fill, rate 1
    assert max_pipeline_segments(16, "hypersystolic") == \
        hypersystolic_depth(16)
    # tiny routes degenerate to a single segment
    for algorithm in ("pipelined", "segmented", "fourcolor",
                      "hypersystolic"):
        assert max_pipeline_segments(2, algorithm) == 1


def test_unknown_algorithm_raises():
    with pytest.raises(ModelError):
        max_pipeline_segments(16, "binomial")


def test_small_depth_is_silent_and_unclamped():
    with warnings.catch_warnings():
        warnings.simplefilter("error", PipelineDepthWarning)
        s = optimal_pipeline_segments(1024.0, 16, 1e-5, 1e-9)
    assert s == 1


def test_overdeep_optimum_warns_but_keeps_closed_form_value():
    # Huge message, tiny latency: S* far beyond the 15-segment route.
    with pytest.warns(PipelineDepthWarning, match="segment capacity 15"):
        s = optimal_pipeline_segments(1 << 30, 16, 1e-7, 1e-9)
    assert s > 15  # historical value preserved by default


def test_clamp_caps_at_route_capacity():
    with pytest.warns(PipelineDepthWarning):
        s = optimal_pipeline_segments(1 << 30, 16, 1e-7, 1e-9, clamp=True)
    assert s == max_pipeline_segments(16, "pipelined") == 15


@pytest.mark.parametrize("algorithm", ["pipelined", "segmented",
                                       "fourcolor", "hypersystolic"])
def test_clamped_depth_never_exceeds_capacity(algorithm):
    cap = max_pipeline_segments(64, algorithm)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PipelineDepthWarning)
        for nbytes in (1 << 10, 1 << 20, 1 << 30):
            s = optimal_pipeline_segments(float(nbytes), 64, 1e-7, 1e-9,
                                          algorithm, clamp=True)
            assert 1 <= s <= cap
