"""Anti-drift tests: the SUMMA/HSUMMA/broadcast closed forms live in
exactly one module (`repro.costs`), and every consumer — the models
layer, the collectives layer, the macro costers and the predictor —
delegates to it.  If someone re-introduces a local copy of a formula,
these tests fail."""


import pytest

from repro import costs
from repro.collectives import cost as collectives_cost
from repro.costs.registry import BCAST_ENTRIES, SMOOTH_MODELS
from repro.models import broadcast_model, hsumma_model, summa_model
from repro.network.model import HockneyParams

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestSingleSourceOfTruth:
    def test_models_broadcast_objects_are_registry_objects(self):
        """The smooth models re-exported by the models layer ARE the
        registry's objects (identity, not equal copies)."""
        assert broadcast_model.BINOMIAL_MODEL is SMOOTH_MODELS["binomial"]
        assert broadcast_model.VANDEGEIJN_MODEL is SMOOTH_MODELS["vandegeijn"]
        assert broadcast_model.FLAT_MODEL is SMOOTH_MODELS["flat"]
        for name, model in broadcast_model.MODELS.items():
            assert model is SMOOTH_MODELS[name]

    def test_collectives_factor_functions_are_registry_functions(self):
        assert (collectives_cost.bcast_latency_factor
                is costs.bcast_latency_factor)
        assert (collectives_cost.bcast_bandwidth_factor
                is costs.bcast_bandwidth_factor)

    def test_model_closed_forms_are_registry_functions(self):
        assert (summa_model.summa_communication_cost
                is costs.summa_communication_cost)
        assert (summa_model.summa_computation_cost
                is costs.summa_computation_cost)
        assert (hsumma_model.hsumma_communication_cost
                is costs.hsumma_communication_cost)
        assert (hsumma_model.hsumma_optimal_vdg_cost
                is costs.hsumma_optimal_vdg_cost)

    def test_optimizer_reexports_are_registry_functions(self):
        from repro.models import optimizer

        assert optimizer.critical_ratio is costs.critical_ratio
        assert optimizer.hsumma_beats_summa is costs.hsumma_beats_summa
        assert (optimizer.crossover_processor_count
                is costs.crossover_processor_count)

    def test_no_closed_forms_left_in_front_ends(self):
        """The collectives front-end holds no arithmetic of its own:
        its `collective_time` is a thin shim over `costs.estimate`."""
        import inspect

        src = inspect.getsource(collectives_cost)
        # The telltale of a duplicated closed form is tree-depth math
        # in the front-end module.
        assert "bit_length" not in src
        assert "log2" not in src


class TestDiscreteSmoothAgreement:
    """The discrete (DES-matching) and smooth (optimizer-friendly)
    factor flavours agree exactly at powers of two — where
    ceil(log2 p) == log2 p — for every registered broadcast."""

    @pytest.mark.parametrize("p", [2, 4, 8, 64, 1024])
    def test_latency_agrees_at_powers_of_two(self, p):
        for name, entry in BCAST_ENTRIES.items():
            assert entry.L(p) == pytest.approx(entry.L_smooth(float(p))), name

    @pytest.mark.parametrize("p", [2, 4, 8, 64, 1024])
    def test_bandwidth_agrees_at_powers_of_two(self, p):
        for name, entry in BCAST_ENTRIES.items():
            assert entry.W(p) == pytest.approx(entry.W_smooth(float(p))), name

    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_collectives_and_models_price_bcasts_identically(self, p):
        """At powers of two the per-byte collectives path and the
        per-element models path give the same broadcast time."""
        m_bytes = 8192
        for name in ("binomial", "vandegeijn", "flat"):
            discrete = collectives_cost.bcast_time(name, m_bytes, p, PARAMS)
            smooth = SMOOTH_MODELS[name].time(
                float(m_bytes), float(p), PARAMS.alpha, PARAMS.beta
            )
            assert discrete == pytest.approx(smooth, rel=1e-12), name
