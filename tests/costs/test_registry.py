"""Tests for the unified cost registry (`repro.costs.registry`)."""


import pytest

from repro.costs import (
    BCAST_ENTRIES,
    CostEstimate,
    CostQuery,
    estimate,
)
from repro.errors import ModelError
from repro.network.model import HockneyParams

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


def _seconds(op, algorithm, p, nbytes, **kw):
    return estimate(CostQuery.from_params(op, algorithm, p, nbytes,
                                          PARAMS, **kw)).seconds


class TestEstimate:
    def test_bcast_binomial(self):
        assert _seconds("bcast", "binomial", 8, 1000) == pytest.approx(
            3 * (1e-4 + 1000 * 1e-9)
        )

    def test_bcast_vandegeijn(self):
        p, m = 16, 4096
        expect = (4 + 15) * 1e-4 + 2 * 15 / 16 * m * 1e-9
        assert _seconds("bcast", "vandegeijn", p, m) == pytest.approx(expect)

    def test_allgather_ring(self):
        p, m = 8, 1000
        assert _seconds("allgather", "ring", p, m) == pytest.approx(
            (p - 1) * (1e-4 + m * 1e-9)
        )

    def test_single_rank_is_free(self):
        for op in ("bcast", "scatter", "gather", "allgather", "reduce",
                   "allreduce", "barrier"):
            assert _seconds(op, "binomial", 1, 12345) == 0.0

    def test_zero_bytes_latency_only(self):
        assert _seconds("bcast", "binomial", 8, 0) == pytest.approx(3e-4)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ModelError):
            _seconds("bcast", "binomial", 8, -1)

    def test_invalid_p_rejected(self):
        with pytest.raises(ModelError):
            _seconds("bcast", "binomial", 0, 8)

    def test_unknown_op_rejected(self):
        with pytest.raises(ModelError):
            _seconds("alltoallw", "binomial", 8, 8)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ModelError):
            _seconds("bcast", "quantum", 8, 8)

    def test_pipelined_needs_segments_or_auto(self):
        auto = _seconds("bcast", "pipelined", 16, 1_000_000)
        manual = _seconds("bcast", "pipelined", 16, 1_000_000, segments=4)
        assert auto <= manual + 1e-12


class TestCostEstimate:
    def test_addition(self):
        a = CostEstimate(seconds=1.0, alpha_terms=2.0, beta_bytes=10.0)
        b = CostEstimate(seconds=0.5, alpha_terms=1.0, beta_bytes=5.0)
        c = a + b
        assert (c.seconds, c.alpha_terms, c.beta_bytes) == (1.5, 3.0, 15.0)

    def test_metadata_matches_seconds_for_simple_ops(self):
        q = CostQuery.from_params("bcast", "binomial", 8, 1000, PARAMS)
        est = estimate(q)
        recomposed = est.alpha_terms * PARAMS.alpha + est.beta_bytes * PARAMS.beta
        assert recomposed == pytest.approx(est.seconds, rel=1e-12)


class TestRegistryEntries:
    def test_every_entry_has_both_flavours(self):
        for name, entry in BCAST_ENTRIES.items():
            assert entry.name == name
            for p in (2, 3, 8, 100):
                assert entry.L(p) >= 0
                assert entry.W(p) >= 0
                assert entry.L_smooth(float(p)) >= 0
                assert entry.W_smooth(float(p)) >= 0

    def test_discrete_upper_bounds_smooth(self):
        """ceil(log2 p) >= log2 p for the log-depth trees (the binary
        tree's smooth form uses a different depth expression, so it is
        excluded here — the power-of-two agreement test still pins it)."""
        for name in ("binomial", "vandegeijn", "flat", "chain"):
            entry = BCAST_ENTRIES[name]
            for p in (3, 5, 6, 7, 9, 100):
                assert entry.L(p) >= entry.L_smooth(float(p)) - 1e-12
