"""Tests for the communication lower bounds (`repro.costs.lower_bounds`)."""


import math

import pytest

from repro.costs import (
    bandwidth_lower_bound_elements,
    latency_lower_bound_terms,
    lower_bound_time,
    memory_dependent_bound_elements,
    memory_independent_bound_elements,
)
from repro.errors import ModelError


class TestMemoryIndependent:
    def test_formula(self):
        assert memory_independent_bound_elements(1024, 64) == pytest.approx(
            1024**2 / 64 ** (2 / 3)
        )

    def test_serial_is_free(self):
        assert memory_independent_bound_elements(1024, 1) == 0.0

    def test_decreases_with_p(self):
        values = [memory_independent_bound_elements(4096, p)
                  for p in (8, 64, 512)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ModelError):
            memory_independent_bound_elements(0, 4)


class TestMemoryDependent:
    def test_2d_memory_sits_at_n2_over_sqrt_p(self):
        """With M = Theta(n^2/p) the bound scales as n^2/sqrt(p)."""
        n, p = 4096, 256
        M = 3 * n * n / p
        w = memory_dependent_bound_elements(n, p, M)
        assert w == pytest.approx(n**3 / (p * math.sqrt(8 * M)) - M)
        assert w > 0

    def test_huge_memory_clamps_to_zero(self):
        assert memory_dependent_bound_elements(64, 4, 1e12) == 0.0

    def test_dominates_when_memory_scarce(self):
        # The memory-dependent branch n^2/sqrt(8p) overtakes the
        # memory-independent n^2/p^(2/3) once p > 512.
        n, p = 8192, 4096
        scarce = n * n / p  # ~1 tile of memory
        assert (memory_dependent_bound_elements(n, p, scarce)
                > memory_independent_bound_elements(n, p))


class TestCombined:
    def test_max_of_applicable_bounds(self):
        n, p = 8192, 4096
        scarce = n * n / p
        assert bandwidth_lower_bound_elements(n, p, scarce) == (
            memory_dependent_bound_elements(n, p, scarce)
        )
        assert bandwidth_lower_bound_elements(n, p) == (
            memory_independent_bound_elements(n, p)
        )

    def test_latency_floor(self):
        assert latency_lower_bound_terms(1) == 0.0
        assert latency_lower_bound_terms(2) == 1.0
        assert latency_lower_bound_terms(64) == 6.0
        assert latency_lower_bound_terms(65) == 7.0


class TestLowerBoundTime:
    def test_assembly(self):
        lb = lower_bound_time(1024, 64, alpha=1e-4, beta=1e-9, gamma=1e-11)
        assert lb.comm_seconds == pytest.approx(
            6 * 1e-4 + lb.elements * 1e-9
        )
        assert lb.compute_seconds == pytest.approx(2 * 1024**3 / 64 * 1e-11)
        assert lb.seconds == lb.comm_seconds + lb.compute_seconds
        assert lb.overlap_seconds == max(lb.comm_seconds, lb.compute_seconds)

    def test_memory_budget_tightens(self):
        n, p = 8192, 4096
        loose = lower_bound_time(n, p, 1e-4, 1e-9)
        tight = lower_bound_time(n, p, 1e-4, 1e-9,
                                 memory_elements=n * n / p)
        assert tight.seconds > loose.seconds

    def test_validation(self):
        with pytest.raises(ModelError):
            lower_bound_time(1024, 64, -1e-4, 1e-9)
