"""Tests for the SUMMA implementation."""

import pytest

from repro.blocks.verify import max_abs_error
from repro.core.summa import SummaConfig, run_summa
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestSummaConfig:
    def test_nsteps(self):
        cfg = SummaConfig(m=64, l=64, n=64, s=4, t=4, block=8)
        assert cfg.nsteps == 8

    def test_block_must_divide_tiles(self):
        with pytest.raises(ConfigurationError):
            SummaConfig(m=64, l=64, n=64, s=4, t=4, block=24)

    def test_grid_must_divide_dims(self):
        with pytest.raises(ConfigurationError):
            SummaConfig(m=65, l=64, n=64, s=4, t=4, block=8)

    def test_rectangular_ok(self):
        cfg = SummaConfig(m=12, l=24, n=36, s=2, t=3, block=4)
        assert cfg.nsteps == 6


class TestSummaCorrectness:
    @pytest.mark.parametrize("grid,block", [((2, 2), 8), ((4, 4), 4), ((2, 4), 8), ((1, 4), 8), ((4, 1), 8)])
    def test_square_matrices(self, rng, grid, block):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_summa(A, B, grid=grid, block=block, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular_matrices(self, rng):
        A = rng.standard_normal((12, 24))
        B = rng.standard_normal((24, 18))
        C, _ = run_summa(A, B, grid=(2, 3), block=4, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_single_rank(self, rng):
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C, _ = run_summa(A, B, grid=(1, 1), block=4, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_block_one(self, rng):
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C, _ = run_summa(A, B, grid=(2, 2), block=1, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    @pytest.mark.parametrize("bcast", ["binomial", "vandegeijn", "flat", "chain", "pipelined", "binary"])
    def test_any_broadcast_algorithm(self, rng, bcast):
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_summa(A, B, grid=(2, 2), block=4, params=PARAMS, bcast=bcast)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_inner_dim_mismatch_rejected(self, rng):
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((6, 8))
        with pytest.raises(ConfigurationError):
            run_summa(A, B, grid=(2, 2), block=2, params=PARAMS)


class TestSummaPhantom:
    def test_phantom_result(self):
        C, sim = run_summa(
            PhantomArray((64, 64)), PhantomArray((64, 64)),
            grid=(4, 4), block=8, params=PARAMS,
        )
        assert isinstance(C, PhantomArray)
        assert C.shape == (64, 64)
        assert sim.total_time > 0

    def test_phantom_timing_matches_real(self, rng):
        """Phantom and data modes must produce identical virtual times."""
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        _, sim_real = run_summa(A, B, grid=(4, 4), block=8, params=PARAMS, gamma=1e-9)
        _, sim_phantom = run_summa(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), block=8, params=PARAMS, gamma=1e-9,
        )
        assert sim_real.total_time == pytest.approx(sim_phantom.total_time)
        assert sim_real.comm_time == pytest.approx(sim_phantom.comm_time)


class TestSummaTiming:
    def test_smaller_block_more_latency(self):
        """The paper's Fig 5 vs 6 setup: small blocks inflate the
        latency term (more steps)."""
        kw = dict(grid=(4, 4), params=PARAMS)
        _, sim_small = run_summa(
            PhantomArray((64, 64)), PhantomArray((64, 64)), block=2, **kw
        )
        _, sim_large = run_summa(
            PhantomArray((64, 64)), PhantomArray((64, 64)), block=16, **kw
        )
        assert sim_small.comm_time > sim_large.comm_time

    def test_compute_time_is_2n3_over_p(self):
        gamma = 1e-9
        n, p = 64, 16
        _, sim = run_summa(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), block=8, params=PARAMS, gamma=gamma,
        )
        assert sim.compute_time == pytest.approx(2 * n**3 / p * gamma)

    def test_comm_plus_compute_equals_total(self):
        _, sim = run_summa(
            PhantomArray((64, 64)), PhantomArray((64, 64)),
            grid=(4, 4), block=8, params=PARAMS, gamma=1e-9,
        )
        # On the critical-path rank the two must add up.
        assert sim.comm_time + sim.compute_time == pytest.approx(sim.total_time)
