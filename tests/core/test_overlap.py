"""Tests for overlapped SUMMA/HSUMMA (paper future work: overlap)."""

import numpy as np
import pytest

from repro.blocks.verify import max_abs_error
from repro.core.hsumma import run_hsumma
from repro.core.overlap import run_hsumma_overlap, run_summa_overlap
from repro.core.summa import run_summa
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestOverlapCorrectness:
    @pytest.mark.parametrize("grid,block", [((2, 2), 8), ((4, 4), 4), ((2, 4), 4)])
    def test_summa_overlap_matches_numpy(self, rng, grid, block):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_summa_overlap(A, B, grid=grid, block=block, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    @pytest.mark.parametrize("G", [1, 2, 4, 8, 16])
    def test_hsumma_overlap_matches_numpy(self, rng, G):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma_overlap(A, B, grid=(4, 4), groups=G,
                                  outer_block=8, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_hsumma_overlap_b_lt_B(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma_overlap(A, B, grid=(4, 4), groups=4,
                                  outer_block=8, inner_block=2, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular(self, rng):
        A = rng.standard_normal((12, 24))
        B = rng.standard_normal((24, 18))
        C, _ = run_summa_overlap(A, B, grid=(2, 3), block=4, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_single_rank(self, rng):
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C, _ = run_summa_overlap(A, B, grid=(1, 1), block=4, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10


class TestOverlapBenefit:
    def _times(self, gamma):
        n = 512
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, plain = run_summa(A, B, grid=(4, 4), block=32,
                             params=PARAMS, gamma=gamma)
        _, over = run_summa_overlap(A, B, grid=(4, 4), block=32,
                                    params=PARAMS, gamma=gamma)
        return plain, over

    def test_overlap_reduces_total_time(self):
        """With comparable per-step comm and compute, lookahead hides
        most communication behind the gemm."""
        plain, over = self._times(gamma=5e-9)
        assert over.total_time < plain.total_time
        # Close to the max(comm, compute) lower bound.
        bound = max(plain.comm_time, plain.compute_time)
        assert over.total_time < bound * 1.1

    def test_overlap_never_slower(self):
        for gamma in (0.0, 1e-10, 1e-8):
            plain, over = self._times(gamma)
            assert over.total_time <= plain.total_time * 1.01

    def test_exposed_comm_shrinks(self):
        plain, over = self._times(gamma=5e-9)
        assert over.comm_time < plain.comm_time / 2

    def test_hsumma_overlap_benefit(self):
        n = 512
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        gamma = 5e-9
        _, plain = run_hsumma(A, B, grid=(4, 4), groups=4,
                              outer_block=32, params=PARAMS, gamma=gamma)
        _, over = run_hsumma_overlap(A, B, grid=(4, 4), groups=4,
                                     outer_block=32, params=PARAMS,
                                     gamma=gamma)
        assert over.total_time < plain.total_time

    def test_phantom_matches_real_timing(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        _, real = run_summa_overlap(A, B, grid=(4, 4), block=8,
                                    params=PARAMS, gamma=1e-9)
        _, phantom = run_summa_overlap(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), block=8, params=PARAMS, gamma=1e-9,
        )
        assert real.total_time == pytest.approx(phantom.total_time)


class TestIBcast:
    def test_phase_order_enforced(self):
        from repro.collectives.nonblocking import IBcast
        from repro.errors import CommunicatorError
        from repro.simulator import run_spmd

        def prog(ctx):
            bc = IBcast(ctx.world, 0)
            try:
                yield from bc.complete("x")
            except CommunicatorError:
                return "caught"
            return "no error"

        res = run_spmd(prog, 2, params=PARAMS)
        assert res.return_values == ["caught", "caught"]

    def test_invalid_root(self):
        from repro.collectives.nonblocking import IBcast
        from repro.errors import CommunicatorError
        from repro.mpi.comm import MpiContext

        ctx = MpiContext(0, 4)
        with pytest.raises(CommunicatorError):
            IBcast(ctx.world, 4)

    def test_delivers_like_blocking_bcast(self):
        from repro.collectives.nonblocking import IBcast
        from repro.simulator import run_spmd

        def prog(ctx):
            bc = IBcast(ctx.world, 2)
            yield from bc.post()
            obj = np.arange(5.0) if ctx.rank == 2 else None
            out = yield from bc.complete(obj)
            yield from bc.finish()
            return out

        res = run_spmd(prog, 7, params=PARAMS)
        for v in res.return_values:
            assert np.allclose(v, np.arange(5.0))
