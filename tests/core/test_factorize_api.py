"""Tests for the factorize() public API and the multilevel runner."""

import numpy as np
import pytest

from repro import factorize
from repro.core.hsumma import run_hsumma_multilevel
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestFactorizeApi:
    def test_lu(self, rng):
        n = 32
        A = rng.standard_normal((n, n)) + n * np.eye(n)
        res = factorize(A, kernel="lu", grid=(2, 2), block=8, params=PARAMS)
        L, U = res.factors
        assert np.max(np.abs(L @ U - A)) < 1e-9
        assert res.kernel == "lu"
        assert res.total_time >= res.comm_time

    def test_qr(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        res = factorize(A, kernel="qr", grid=(2, 2), block=8, params=PARAMS)
        (R,) = res.factors
        assert np.max(np.abs(R.T @ R - A.T @ A)) < 1e-9

    def test_nprocs_factored(self, rng):
        n = 32
        A = rng.standard_normal((n, n)) + n * np.eye(n)
        res = factorize(A, kernel="lu", nprocs=4, block=8, params=PARAMS)
        assert res.parameters["grid"] == (2, 2)

    def test_default_block_valid(self, rng):
        n = 24
        A = rng.standard_normal((n, n)) + n * np.eye(n)
        res = factorize(A, kernel="lu", grid=(2, 2), params=PARAMS)
        assert n % res.parameters["block"] == 0

    def test_hierarchical_groups(self):
        res = factorize(PhantomArray((512, 512)), kernel="lu", grid=(4, 4),
                        block=32, groups=(2, 2), params=PARAMS)
        assert res.parameters["groups"] == (2, 2)

    def test_unknown_kernel(self, rng):
        with pytest.raises(ConfigurationError, match="kernel"):
            factorize(rng.standard_normal((8, 8)), kernel="cholesky",
                      grid=(2, 2))

    def test_needs_grid_or_procs(self, rng):
        with pytest.raises(ConfigurationError):
            factorize(rng.standard_normal((8, 8)), kernel="lu")


class TestMultilevelRunner:
    def test_correct(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma_multilevel(
            A, B, grid=(4, 4), row_factors=(2, 2), col_factors=(2, 2),
            blocks=(8, 4), params=PARAMS,
        )
        assert np.max(np.abs(C - A @ B)) < 1e-10

    def test_single_level_matches_summa(self):
        from repro.core.summa import run_summa
        from repro.mpi.comm import CollectiveOptions

        n = 64
        opts = CollectiveOptions(bcast="vandegeijn")
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, ml = run_hsumma_multilevel(
            A, B, grid=(4, 4), row_factors=(4,), col_factors=(4,),
            blocks=(8,), params=PARAMS, options=opts,
        )
        _, s = run_summa(A, B, grid=(4, 4), block=8, params=PARAMS,
                         options=opts)
        assert ml.total_time == pytest.approx(s.total_time)

    def test_bad_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            run_hsumma_multilevel(
                PhantomArray((32, 32)), PhantomArray((32, 32)),
                grid=(4, 4), row_factors=(3, 2), col_factors=(2, 2),
                blocks=(8, 8), params=PARAMS,
            )
