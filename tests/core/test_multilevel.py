"""Tests for the multi-level HSUMMA extension (paper future work)."""

import numpy as np
import pytest

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.verify import max_abs_error
from repro.core.hsumma import MultiLevelConfig, hsumma_multilevel_program
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions, MpiContext
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


def run_multilevel(A, B, cfg, options=None, gamma=0.0):
    nranks = cfg.s * cfg.t
    da = DistMatrix.from_global(A, cfg.s, cfg.t)
    db = DistMatrix.from_global(B, cfg.s, cfg.t)
    programs = []
    for rank in range(nranks):
        i, j = divmod(rank, cfg.t)
        ctx = MpiContext(rank, nranks, options=options, gamma=gamma)
        programs.append(
            hsumma_multilevel_program(ctx, da.tile(i, j), db.tile(i, j), cfg)
        )
    sim = Engine(HomogeneousNetwork(nranks, PARAMS)).run(programs)
    dc = DistMatrix.from_global(np.zeros((cfg.m, cfg.n)), cfg.s, cfg.t)
    tiles = {divmod(r, cfg.t): sim.return_values[r] for r in range(nranks)}
    return dc.dist.assemble(tiles), sim


class TestMultiLevelConfig:
    def test_factors_must_multiply(self):
        with pytest.raises(ConfigurationError):
            MultiLevelConfig(m=16, l=16, n=16, s=4, t=4,
                             row_factors=(2, 3), col_factors=(2, 2),
                             blocks=(4, 4))

    def test_blocks_non_increasing(self):
        with pytest.raises(ConfigurationError):
            MultiLevelConfig(m=16, l=16, n=16, s=4, t=4,
                             row_factors=(2, 2), col_factors=(2, 2),
                             blocks=(2, 4))

    def test_lengths_must_match(self):
        with pytest.raises(ConfigurationError):
            MultiLevelConfig(m=16, l=16, n=16, s=4, t=4,
                             row_factors=(2, 2), col_factors=(4,),
                             blocks=(4, 4))


class TestMultiLevelCorrectness:
    def test_one_level_is_summa(self, rng):
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        cfg = MultiLevelConfig(m=n, l=n, n=n, s=4, t=4,
                               row_factors=(4,), col_factors=(4,),
                               blocks=(4,))
        C, _ = run_multilevel(A, B, cfg)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_two_levels_match_hsumma(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        cfg = MultiLevelConfig(m=n, l=n, n=n, s=4, t=4,
                               row_factors=(2, 2), col_factors=(2, 2),
                               blocks=(8, 4))
        C, _ = run_multilevel(A, B, cfg)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_three_levels(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        cfg = MultiLevelConfig(m=n, l=n, n=n, s=8, t=8,
                               row_factors=(2, 2, 2), col_factors=(2, 2, 2),
                               blocks=(4, 4, 2))
        C, _ = run_multilevel(A, B, cfg)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_asymmetric_factors(self, rng):
        n = 24
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        cfg = MultiLevelConfig(m=n, l=n, n=n, s=2, t=6,
                               row_factors=(2, 1), col_factors=(3, 2),
                               blocks=(4, 2))
        C, _ = run_multilevel(A, B, cfg)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_two_level_timing_matches_hsumma_runner(self):
        """Multi-level with h=2 must cost the same as run_hsumma."""
        from repro.core.hsumma import run_hsumma

        n = 32
        rng = np.random.default_rng(0)
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        vdg = CollectiveOptions(bcast="vandegeijn")
        cfg = MultiLevelConfig(m=n, l=n, n=n, s=4, t=4,
                               row_factors=(2, 2), col_factors=(2, 2),
                               blocks=(8, 8))
        _, ml_sim = run_multilevel(A, B, cfg, options=vdg)
        _, h_sim = run_hsumma(A, B, grid=(4, 4), groups=(2, 2),
                              outer_block=8, params=PARAMS, options=vdg)
        assert ml_sim.total_time == pytest.approx(h_sim.total_time)
