"""Tests for the HSUMMA implementation — the paper's contribution."""

import pytest

from repro.blocks.verify import max_abs_error
from repro.core.hsumma import HSummaConfig, run_hsumma
from repro.core.summa import run_summa
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")


class TestHSummaConfig:
    def test_properties(self):
        cfg = HSummaConfig(m=64, l=64, n=64, s=4, t=4, I=2, J=2,
                           outer_block=16, inner_block=4)
        assert cfg.groups == 4
        assert cfg.inner_s == 2 and cfg.inner_t == 2
        assert cfg.outer_steps == 4
        assert cfg.inner_steps == 4

    def test_group_grid_must_divide(self):
        with pytest.raises(ConfigurationError):
            HSummaConfig(m=64, l=64, n=64, s=4, t=4, I=3, J=1,
                         outer_block=16, inner_block=16)

    def test_inner_block_le_outer(self):
        with pytest.raises(ConfigurationError, match="inner block"):
            HSummaConfig(m=64, l=64, n=64, s=4, t=4, I=2, J=2,
                         outer_block=8, inner_block=16)

    def test_inner_divides_outer(self):
        with pytest.raises(ConfigurationError):
            HSummaConfig(m=64, l=64, n=64, s=4, t=4, I=2, J=2,
                         outer_block=16, inner_block=6)

    def test_outer_block_within_tile(self):
        with pytest.raises(ConfigurationError):
            HSummaConfig(m=64, l=64, n=64, s=4, t=4, I=2, J=2,
                         outer_block=32, inner_block=32)


class TestHSummaCorrectness:
    @pytest.mark.parametrize("groups", [1, 2, 4, 8, 16])
    def test_all_group_counts(self, rng, groups):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma(A, B, grid=(4, 4), groups=groups,
                          outer_block=8, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_explicit_group_grid(self, rng):
        n = 24
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma(A, B, grid=(2, 6), groups=(2, 3),
                          outer_block=4, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_inner_block_smaller_than_outer(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma(A, B, grid=(4, 4), groups=4,
                          outer_block=8, inner_block=2, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular_matrices(self, rng):
        A = rng.standard_normal((12, 24))
        B = rng.standard_normal((24, 36))
        C, _ = run_hsumma(A, B, grid=(2, 4), groups=(2, 2),
                          outer_block=3, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    @pytest.mark.parametrize("bcast", ["binomial", "vandegeijn", "pipelined"])
    def test_broadcast_algorithms(self, rng, bcast):
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma(A, B, grid=(4, 4), groups=4, outer_block=4,
                          params=PARAMS, outer_bcast=bcast, inner_bcast=bcast)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_mixed_level_broadcasts(self, rng):
        """The paper allows different algorithms per level."""
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_hsumma(A, B, grid=(4, 4), groups=4, outer_block=4,
                          params=PARAMS, outer_bcast="vandegeijn",
                          inner_bcast="binomial")
        assert max_abs_error(C, A @ B) < 1e-10


class TestDegenerationIdentities:
    """The paper's worst-case guarantee: G=1 and G=p reproduce SUMMA."""

    @pytest.mark.parametrize("G", [1, 16])
    def test_time_equals_summa(self, G):
        n = 64
        A = PhantomArray((n, n))
        B = PhantomArray((n, n))
        _, s_sim = run_summa(A, B, grid=(4, 4), block=8, params=PARAMS,
                             options=VDG)
        _, h_sim = run_hsumma(A, B, grid=(4, 4), groups=G, outer_block=8,
                              params=PARAMS, options=VDG)
        assert h_sim.total_time == pytest.approx(s_sim.total_time)
        assert h_sim.comm_time == pytest.approx(s_sim.comm_time)

    def test_message_volume_independent_of_groups(self):
        """HSUMMA moves the same bytes as SUMMA for any G (binomial
        trees forward whole copies, so compare at fixed algorithm)."""
        n = 64
        A = PhantomArray((n, n))
        B = PhantomArray((n, n))
        volumes = []
        for G in (1, 4, 16):
            _, sim = run_hsumma(A, B, grid=(4, 4), groups=G,
                                outer_block=8, params=PARAMS)
            volumes.append(sim.total_bytes)
        assert volumes[0] == volumes[1] == volumes[2]


class TestInteriorOptimum:
    def test_u_shape_under_vdg(self):
        """alpha/beta >> 2nb/p: an interior G must beat both extremes
        (the paper's headline theorem)."""
        n, p = 1024, 64
        times = {}
        for G in (1, 8, 64):
            _, sim = run_hsumma(
                PhantomArray((n, n)), PhantomArray((n, n)),
                grid=(8, 8), groups=G, outer_block=16,
                params=HockneyParams(alpha=1e-4, beta=1e-9), options=VDG,
            )
            times[G] = sim.comm_time
        assert times[8] < times[1]
        assert times[8] < times[64]

    def test_flat_in_g_under_binomial(self):
        """Table I: with binomial broadcast the G terms add to the same
        totals, so HSUMMA(G) == SUMMA for every G."""
        n = 64
        ref = None
        for G in (1, 2, 4, 8, 16):
            _, sim = run_hsumma(
                PhantomArray((n, n)), PhantomArray((n, n)),
                grid=(4, 4), groups=G, outer_block=8, params=PARAMS,
            )
            if ref is None:
                ref = sim.total_time
            assert sim.total_time == pytest.approx(ref)


class TestHSummaPhantom:
    def test_phantom_equals_real_timing(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        _, real = run_hsumma(A, B, grid=(4, 4), groups=4, outer_block=8,
                             params=PARAMS, gamma=1e-9)
        _, phantom = run_hsumma(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), groups=4, outer_block=8, params=PARAMS, gamma=1e-9,
        )
        assert real.total_time == pytest.approx(phantom.total_time)

    def test_invalid_group_count_rejected(self):
        with pytest.raises(ConfigurationError):
            run_hsumma(PhantomArray((32, 32)), PhantomArray((32, 32)),
                       grid=(4, 4), groups=3, outer_block=8, params=PARAMS)
