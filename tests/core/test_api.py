"""Tests for the one-call public API."""

import numpy as np
import pytest

from repro.blocks.verify import max_abs_error
from repro.core.api import ALGORITHMS, multiply
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


class TestMultiply:
    @pytest.mark.parametrize("algorithm,kw", [
        ("serial", {}),
        ("summa", dict(grid=(2, 2), block=4)),
        ("hsumma", dict(grid=(2, 2), block=4, groups=2)),
        ("cannon", dict(grid=(2, 2))),
        ("fox", dict(grid=(2, 2))),
        ("3d", dict(nprocs=8)),
        ("2.5d", dict(nprocs=8, replication=2)),
    ])
    def test_all_algorithms_correct(self, rng, algorithm, kw):
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        result = multiply(A, B, algorithm=algorithm, params=PARAMS, **kw)
        assert max_abs_error(result.C, A @ B) < 1e-10
        assert result.algorithm == algorithm
        assert result.total_time >= 0

    def test_nprocs_factored_to_grid(self, rng):
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        result = multiply(A, B, nprocs=8, algorithm="summa", block=2, params=PARAMS)
        assert result.parameters["grid"] == (2, 4)

    def test_hsumma_default_groups_near_sqrt_p(self):
        result = multiply(
            PhantomArray((64, 64)), PhantomArray((64, 64)),
            nprocs=16, algorithm="hsumma", block=4, params=PARAMS,
        )
        assert result.parameters["groups"] == 4

    def test_default_block(self, rng):
        n = 24
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        result = multiply(A, B, grid=(2, 3), algorithm="summa", params=PARAMS)
        # gcd(24/2, 24/3) = gcd(12, 8) = 4.
        assert result.parameters["block"] == 4
        assert max_abs_error(result.C, A @ B) < 1e-10

    def test_unknown_algorithm(self, rng):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            multiply(np.zeros((4, 4)), np.zeros((4, 4)),
                     nprocs=4, algorithm="magic")

    def test_missing_procs_rejected(self):
        with pytest.raises(ConfigurationError):
            multiply(np.zeros((4, 4)), np.zeros((4, 4)), algorithm="summa")

    def test_result_time_decomposition(self):
        result = multiply(
            PhantomArray((32, 32)), PhantomArray((32, 32)),
            grid=(2, 2), algorithm="summa", block=4,
            params=PARAMS, gamma=1e-9,
        )
        assert result.total_time == pytest.approx(
            result.comm_time + result.compute_time
        )

    def test_algorithms_tuple(self):
        assert "hsumma" in ALGORITHMS and "summa" in ALGORITHMS
        assert "cyclic" in ALGORITHMS

    @pytest.mark.parametrize("algorithm,kw", [
        ("summa", dict(overlap=True)),
        ("hsumma", dict(overlap=True, groups=2)),
        ("cyclic", {}),
        ("cyclic", dict(groups=2)),
        ("cyclic", dict(overlap=True)),
    ])
    def test_variant_algorithms_correct(self, rng, algorithm, kw):
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        result = multiply(A, B, grid=(2, 2), algorithm=algorithm,
                          block=4, params=PARAMS, **kw)
        assert max_abs_error(result.C, A @ B) < 1e-10

    def test_overlap_recorded_in_parameters(self):
        result = multiply(
            PhantomArray((32, 32)), PhantomArray((32, 32)),
            grid=(2, 2), algorithm="summa", block=4,
            params=PARAMS, overlap=True,
        )
        assert result.parameters["overlap"] is True
