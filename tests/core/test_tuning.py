"""Tests for the empirical group-count tuner."""

import pytest

from repro.core.tuning import tune_group_count
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")


class TestTuneGroupCount:
    def test_finds_interior_optimum_under_vdg(self):
        report = tune_group_count(
            1024, (8, 8), 16, params=PARAMS, options=VDG, metric="comm"
        )
        assert report.best_groups not in (1, 64)
        # The sampled time at the optimum is really the minimum.
        assert report.best_time == min(report.times.values())

    def test_all_valid_counts_sampled(self):
        report = tune_group_count(256, (4, 4), 8, params=PARAMS, options=VDG)
        assert sorted(report.times) == [1, 2, 4, 8, 16]

    def test_explicit_candidates(self):
        report = tune_group_count(
            256, (4, 4), 8, candidates=[1, 4], params=PARAMS, options=VDG
        )
        assert sorted(report.times) == [1, 4]

    def test_binomial_is_flat_ties_break_low(self):
        """Under binomial broadcast all G tie; the tuner must pick the
        smallest (deterministic tie-break)."""
        report = tune_group_count(256, (4, 4), 8, params=PARAMS)
        assert report.best_groups == 1

    def test_metric_validation(self):
        with pytest.raises(ConfigurationError):
            tune_group_count(256, (4, 4), 8, metric="latency")

    def test_total_metric_includes_compute(self):
        r_comm = tune_group_count(
            256, (4, 4), 8, params=PARAMS, options=VDG,
            metric="comm", gamma=0.0,
        )
        r_total = tune_group_count(
            256, (4, 4), 8, params=PARAMS, options=VDG,
            metric="total", gamma=1e-6,
        )
        assert all(
            r_total.times[g] > r_comm.times[g] for g in r_comm.times
        )
