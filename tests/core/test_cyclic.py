"""Tests for block-cyclic SUMMA/HSUMMA (paper future work: block-cyclic)."""

import pytest

from repro.blocks.verify import max_abs_error
from repro.core.cyclic import CyclicConfig, run_cyclic
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.mpi.comm import CollectiveOptions

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestCyclicConfig:
    def test_nsteps(self):
        cfg = CyclicConfig(m=48, l=48, n=48, s=2, t=2, nb=4)
        assert cfg.nsteps == 12

    def test_hierarchical_flag(self):
        assert not CyclicConfig(m=16, l=16, n=16, s=2, t=2, nb=4).hierarchical
        assert CyclicConfig(m=16, l=16, n=16, s=2, t=2, nb=4,
                            I=2, J=1).hierarchical

    def test_divisibility(self):
        with pytest.raises(ConfigurationError):
            CyclicConfig(m=50, l=48, n=48, s=2, t=2, nb=4)


class TestCyclicCorrectness:
    @pytest.mark.parametrize("nb", [1, 2, 4, 12])
    def test_flat(self, rng, nb):
        n = 48
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_cyclic(A, B, grid=(2, 2), nb=nb, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    @pytest.mark.parametrize("groups", [(2, 1), (1, 2), (2, 2)])
    def test_hierarchical(self, rng, groups):
        n = 48
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_cyclic(A, B, grid=(2, 2), nb=4, groups=groups,
                          params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_overlap(self, rng):
        n = 48
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_cyclic(A, B, grid=(2, 2), nb=4, overlap=True,
                          params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular(self, rng):
        A = rng.standard_normal((24, 36))
        B = rng.standard_normal((36, 12))
        C, _ = run_cyclic(A, B, grid=(2, 3), nb=2, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_larger_grid(self, rng):
        n = 64
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_cyclic(A, B, grid=(4, 4), nb=4, groups=(2, 2),
                          params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_hier_overlap_rejected(self, rng):
        A = rng.standard_normal((16, 16))
        with pytest.raises(ConfigurationError, match="overlap"):
            run_cyclic(A, A, grid=(2, 2), nb=4, groups=(2, 2),
                       overlap=True, params=PARAMS)


class TestCyclicTiming:
    def test_phantom_mode(self):
        C, sim = run_cyclic(PhantomArray((64, 64)), PhantomArray((64, 64)),
                            grid=(2, 2), nb=8, params=PARAMS)
        assert isinstance(C, PhantomArray)
        assert sim.total_time > 0

    def test_hierarchy_reduces_latency_under_vdg(self):
        """The HSUMMA latency collapse applies per rotating pivot."""
        n = 512
        opts = CollectiveOptions(bcast="vandegeijn")
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, flat = run_cyclic(A, B, grid=(8, 8), nb=8, params=PARAMS,
                             options=opts)
        _, hier = run_cyclic(A, B, grid=(8, 8), nb=8, groups=(4, 4),
                             params=PARAMS, options=opts)
        assert hier.comm_time < flat.comm_time

    def test_overlap_reduces_total(self):
        n = 256
        gamma = 5e-9
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, plain = run_cyclic(A, B, grid=(4, 4), nb=16, params=PARAMS,
                              gamma=gamma)
        _, over = run_cyclic(A, B, grid=(4, 4), nb=16, overlap=True,
                             params=PARAMS, gamma=gamma)
        assert over.total_time < plain.total_time

    def test_same_volume_as_block_distribution(self):
        """Cyclic vs block distribution move the same bytes for b=nb."""
        from repro.core.summa import run_summa

        n = 128
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, cyc = run_cyclic(A, B, grid=(4, 4), nb=8, params=PARAMS)
        _, blk = run_summa(A, B, grid=(4, 4), block=8, params=PARAMS)
        assert cyc.total_bytes == blk.total_bytes
