"""Tests for group-grid selection and topology-aware grouping."""

import pytest

from repro.core.grouping import (
    choose_group_grid,
    feasible_group_grids,
    group_aligned_mapping,
    group_of,
    valid_group_counts,
)
from repro.errors import ConfigurationError


class TestFeasibleGroupGrids:
    def test_square_grid(self):
        grids = feasible_group_grids(4, 4, 4)
        assert set(grids) == {(1, 4), (2, 2), (4, 1)}

    def test_rect_grid(self):
        grids = feasible_group_grids(8, 16, 4)
        assert (2, 2) in grids and (4, 1) in grids and (1, 4) in grids

    def test_infeasible(self):
        assert feasible_group_grids(4, 4, 3) == []

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            feasible_group_grids(0, 4, 2)


class TestChooseGroupGrid:
    def test_prefers_square_inner(self):
        # 4x4 grid, G=4: (2,2) gives 2x2 inner grids (square).
        assert choose_group_grid(4, 4, 4) == (2, 2)

    def test_paper_grid(self):
        # p=128 as 8x16: G=16 should give square-ish inner grids.
        I, J = choose_group_grid(8, 16, 16)
        assert I * J == 16
        assert 8 % I == 0 and 16 % J == 0

    def test_g1_and_gp(self):
        assert choose_group_grid(4, 4, 1) == (1, 1)
        assert choose_group_grid(4, 4, 16) == (4, 4)

    def test_infeasible_raises_with_hint(self):
        with pytest.raises(ConfigurationError, match="valid counts"):
            choose_group_grid(4, 4, 5)


class TestValidGroupCounts:
    def test_square_16(self):
        assert valid_group_counts(4, 4) == [1, 2, 4, 8, 16]

    def test_contains_extremes(self):
        for s, t in ((2, 4), (8, 16), (3, 3)):
            counts = valid_group_counts(s, t)
            assert 1 in counts
            assert s * t in counts

    def test_all_feasible(self):
        for G in valid_group_counts(8, 16):
            assert feasible_group_grids(8, 16, G)


class TestGroupOf:
    def test_basic(self):
        assert group_of(0, 0, 4, 4, 2, 2) == (0, 0)
        assert group_of(3, 3, 4, 4, 2, 2) == (1, 1)
        assert group_of(1, 2, 4, 4, 2, 2) == (0, 1)

    def test_indivisible(self):
        with pytest.raises(ConfigurationError):
            group_of(0, 0, 4, 4, 3, 1)

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            group_of(4, 0, 4, 4, 2, 2)


class TestGroupAlignedMapping:
    def test_groups_contiguous(self):
        m = group_aligned_mapping(4, 4, 2, 2, ranks_per_node=1)
        # Group (0,0) = grid rows 0-1, cols 0-1 = ranks 0,1,4,5: these
        # must land on the first four nodes.
        group_ranks = [0, 1, 4, 5]
        nodes = sorted(m.node(r) for r in group_ranks)
        assert nodes == [0, 1, 2, 3]

    def test_respects_ranks_per_node(self):
        m = group_aligned_mapping(4, 4, 2, 2, ranks_per_node=4)
        # Each group of 4 ranks shares exactly one node.
        assert len({m.node(r) for r in (0, 1, 4, 5)}) == 1
        assert m.node(0) != m.node(2)  # different groups

    def test_covers_all_ranks(self):
        m = group_aligned_mapping(4, 8, 2, 4, ranks_per_node=2)
        assert m.nranks == 32
        seen = [m.node(r) for r in range(32)]
        assert max(seen) == m.nnodes - 1

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            group_aligned_mapping(4, 4, 3, 2)

    def test_bad_ranks_per_node(self):
        with pytest.raises(ConfigurationError):
            group_aligned_mapping(4, 4, 2, 2, ranks_per_node=0)
