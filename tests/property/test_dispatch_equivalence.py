"""Golden pin for the engine's request dispatch.

The engine's ``_resume`` loop was refactored from an isinstance ladder
to a type-keyed dispatch table, and its per-event closures to
method+args records.  Those are pure mechanics: a shuffled mix of
*every* request kind — sends, receives, isend/irecv/wait, compute,
spans, counters, timed receives and collectives, with and without an
active fault schedule — must produce bit-identical ``SimResult`` stats,
trace and spans to the seed semantics.

The seed semantics are pinned as golden JSON fixtures (generated with
``pytest --regen-golden`` against the pre-refactor engine and committed)
so any future rework of the hot path is held to the same standard.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np
import pytest

from repro.faults import parse_fault_spec
from repro.network.model import HockneyParams
from repro.simulator import run_spmd
from repro.simulator.requests import RECV_TIMEOUT, CounterRequest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
NRANKS = 5
ROUNDS = 4
FAULT_SPEC = ("drop(p=0.25); degrade(src=0, dst=1, beta=3); "
              "slow(rank=2, factor=2.5, t0=0, t1=0.005)")

#: Collectives every rank calls each round (op name, needs_root).
_COLLECTIVES = [
    ("bcast", True),
    ("allreduce", False),
    ("gather", True),
    ("allgather", False),
    ("reduce", True),
    ("scatter", True),
    ("barrier", False),
]


def _plan(seed: int):
    """A deterministic, SPMD-consistent kitchen-sink schedule.

    Returns per-round point-to-point ops per rank plus the round's
    collective, shuffled by ``seed`` — the *mix order* varies across
    seeds while staying deadlock-free (unique tags, isend senders,
    blocking receivers in shuffled order).
    """
    rng = np.random.default_rng(seed)
    rounds = []
    tag = 0
    for _ in range(ROUNDS):
        ops: list[list[tuple]] = [[] for _ in range(NRANKS)]
        recvs: list[list[tuple]] = [[] for _ in range(NRANKS)]
        for _ in range(int(rng.integers(3, 9))):
            src, dst = (int(x) for x in rng.choice(NRANKS, size=2,
                                                   replace=False))
            nwords = int(rng.integers(1, 64))
            ops[src].append(("isend", dst, tag, nwords))
            recvs[dst].append(("recv", src, tag))
            tag += 1
        # One blocking send/recv pair (rendezvous path).
        src, dst = (int(x) for x in rng.choice(NRANKS, size=2,
                                               replace=False))
        ops[src].append(("send", dst, tag, 8))
        recvs[dst].append(("recv", src, tag))
        tag += 1
        # One timed receive that must expire: nobody sends this tag.
        waiter = int(rng.integers(0, NRANKS))
        peer = (waiter + 1) % NRANKS
        recvs[waiter].append(("timed_recv", peer, tag, 2e-4))
        tag += 1
        # A counter bump and spans on random ranks.
        ops[int(rng.integers(0, NRANKS))].append(("counter",))
        ops[int(rng.integers(0, NRANKS))].append(("spanned_compute",
                                                  float(rng.uniform(0, 1e-4))))
        for r in range(NRANKS):
            rng.shuffle(recvs[r])
            merged = []
            for op in ops[r] + recvs[r]:
                if rng.random() < 0.4:
                    merged.append(("compute", float(rng.uniform(0, 1e-4))))
                merged.append(op)
            ops[r] = merged
        coll, needs_root = _COLLECTIVES[int(rng.integers(0, len(_COLLECTIVES)))]
        root = int(rng.integers(0, NRANKS)) if needs_root else 0
        rounds.append((ops, coll, root))
    return rounds


def _program(rounds, rank):
    """One rank's generator walking the plan (SPMD in the collectives)."""

    def gen(ctx):
        world = ctx.world
        handles = []
        timeouts_seen = 0
        words_received = 0
        for ops, coll, root in rounds:
            yield from ctx.span("round")
            for op in ops[rank]:
                kind = op[0]
                if kind == "isend":
                    _, dst, tag, nwords = op
                    h = yield from world.isend(
                        np.full(nwords, float(rank)), dst, tag)
                    handles.append(h)
                elif kind == "send":
                    _, dst, tag, nwords = op
                    yield from world.send(np.full(nwords, float(rank)),
                                          dst, tag)
                elif kind == "recv":
                    _, src, tag = op
                    payload = yield from world.recv(src, tag)
                    words_received += payload.size
                elif kind == "timed_recv":
                    _, src, tag, timeout = op
                    out = yield from world.recv(src, tag, timeout=timeout)
                    assert out is RECV_TIMEOUT
                    timeouts_seen += 1
                elif kind == "counter":
                    yield CounterRequest("recoveries")
                elif kind == "spanned_compute":
                    yield from ctx.span("local.work")
                    yield from ctx.compute(op[1])
                    yield from ctx.end_span()
                else:  # ("compute", seconds)
                    yield from ctx.compute(op[1])
            contribution = np.full(6, float(rank + 1))
            if coll == "bcast":
                out = yield from world.bcast(
                    contribution if rank == root else None, root=root)
                words_received += out.size
            elif coll == "allreduce":
                out = yield from world.allreduce(contribution)
                words_received += out.size
            elif coll == "gather":
                out = yield from world.gather(contribution, root=root)
                if rank == root:
                    words_received += sum(o.size for o in out)
            elif coll == "allgather":
                out = yield from world.allgather(contribution)
                words_received += sum(o.size for o in out)
            elif coll == "reduce":
                out = yield from world.reduce(contribution, root=root)
                if rank == root:
                    words_received += out.size
            elif coll == "scatter":
                parts = None
                if rank == root:
                    parts = [np.full(3, float(i)) for i in range(NRANKS)]
                out = yield from world.scatter(parts, root=root)
                words_received += out.size
            else:  # barrier
                yield from world.barrier()
            yield from ctx.end_span()
        for h in handles:
            yield from world.wait(h)
        return (words_received, timeouts_seen)

    return gen


def _run(seed: int, faulty: bool):
    rounds = _plan(seed)
    faults = parse_fault_spec(FAULT_SPEC, seed=seed) if faulty else None

    def factory(ctx):
        return _program(rounds, ctx.rank)(ctx)

    return run_spmd(factory, NRANKS, params=PARAMS, trace=True,
                    faults=faults)


def _snapshot(sim) -> dict:
    """JSON-stable full dump: stats, trace, spans, return values."""
    return {
        "stats": [dataclasses.asdict(s) for s in sim.stats],
        "trace": [
            {"src": t.src, "dst": t.dst, "tag": repr(t.tag),
             "nbytes": t.nbytes, "start": t.start, "finish": t.finish,
             "span": t.span}
            for t in sim.trace
        ],
        "spans": [
            [s.rank, s.name, s.start, s.end]
            for s in sim.iter_spans()
        ],
        "return_values": [list(v) for v in sim.return_values],
        "total_time": sim.total_time,
        "comm_time": sim.comm_time,
        "compute_time": sim.compute_time,
    }


CASES = [(seed, faulty) for seed in (0, 1) for faulty in (False, True)]


@pytest.mark.parametrize("seed,faulty", CASES)
def test_dispatch_matches_seed_semantics(seed, faulty, regen_golden):
    """The refactored dispatch reproduces the pinned seed output —
    every stat, every trace record, every span, bit for bit."""
    snap = _snapshot(_run(seed, faulty))
    name = f"dispatch_seed{seed}_{'faulty' if faulty else 'clean'}.json"
    path = GOLDEN_DIR / name
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snap, indent=1) + "\n")
        pytest.skip(f"regenerated {name}")
    golden = json.loads(path.read_text())
    assert snap == golden


@pytest.mark.parametrize("seed,faulty", [(7, False), (7, True)])
def test_dispatch_is_deterministic(seed, faulty):
    """Two fresh engines over the same shuffled mix agree exactly."""
    a, b = _snapshot(_run(seed, faulty)), _snapshot(_run(seed, faulty))
    assert a == b
