"""Property-based tests (hypothesis) on core invariants.

These attack the places where hand-picked examples are weakest:
arbitrary communicator sizes/roots for collectives, arbitrary split
shapes for payloads, arbitrary grids for distributions, and the
analytic-model identities across the whole parameter space.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.distribution import BlockDistribution
from repro.collectives import BROADCAST_ALGORITHMS
from repro.models.broadcast_model import BINOMIAL_MODEL, VANDEGEIJN_MODEL
from repro.models.hsumma_model import hsumma_communication_cost
from repro.models.optimizer import (
    critical_ratio,
    predicted_extremum_kind,
    vdg_cost_derivative,
)
from repro.models.summa_model import summa_communication_cost
from repro.network.model import HockneyParams
from repro.payloads import join_payload, split_payload
from repro.simulator import run_spmd
from repro.util.gridmath import divisors, factor_grid, split_evenly

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestGridMathProperties:
    @given(st.integers(min_value=1, max_value=10_000))
    def test_factor_grid_invariants(self, p):
        s, t = factor_grid(p)
        assert s * t == p
        assert 1 <= s <= t

    @given(st.integers(min_value=1, max_value=2_000))
    def test_divisors_divide(self, n):
        for d in divisors(n):
            assert n % d == 0

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=64),
    )
    def test_split_evenly_properties(self, total, parts):
        chunks = split_evenly(total, parts)
        assert sum(chunks) == total
        assert len(chunks) == parts
        assert max(chunks) - min(chunks) <= 1


class TestPayloadProperties:
    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=40),
    )
    def test_split_join_roundtrip_1d(self, size, parts):
        arr = np.arange(float(size))
        back = join_payload(split_payload(arr, parts))
        assert np.array_equal(back, arr)

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=30),
    )
    def test_split_join_roundtrip_2d(self, rows, cols, parts):
        arr = np.arange(float(rows * cols)).reshape(rows, cols)
        back = join_payload(split_payload(arr, parts))
        assert np.array_equal(back, arr)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=50),
    )
    def test_split_sizes_balanced(self, size, parts):
        segs = split_payload(np.zeros(size), parts)
        sizes = [s.data.size for s in segs]
        assert sum(sizes) == size
        assert max(sizes) - min(sizes) <= 1


class TestDistributionProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_block_roundtrip(self, tile_r, tile_c, s, t):
        rows, cols = tile_r * s, tile_c * t
        d = BlockDistribution(rows, cols, s, t)
        M = np.arange(float(rows * cols)).reshape(rows, cols)
        tiles = {
            (i, j): d.extract_tile(M, i, j)
            for i in range(s)
            for j in range(t)
        }
        assert np.array_equal(d.assemble(tiles), M)

    @given(
        st.integers(min_value=2, max_value=24),
        st.integers(min_value=2, max_value=24),
    )
    def test_every_element_has_one_owner(self, rows, cols):
        s = max(d for d in divisors(rows) if d <= 4)
        t = max(d for d in divisors(cols) if d <= 4)
        d = BlockDistribution(rows, cols, s, t)
        for gi in range(rows):
            for gj in range(cols):
                i, j = d.owner(gi, gj)
                assert 0 <= i < s and 0 <= j < t
                li, lj = d.global_to_local(gi, gj)
                assert 0 <= li < d.tile_rows and 0 <= lj < d.tile_cols


class TestBroadcastProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        algorithm=st.sampled_from(sorted(BROADCAST_ALGORITHMS)),
        size=st.integers(min_value=1, max_value=20),
        data=st.data(),
    )
    def test_delivery_any_size_any_root(self, algorithm, size, data):
        """Every broadcast algorithm delivers the exact payload to every
        rank, for arbitrary sizes and roots, and terminates."""
        root = data.draw(st.integers(min_value=0, max_value=size - 1))
        nelems = data.draw(st.integers(min_value=0, max_value=64))
        payload = np.arange(float(nelems))

        def prog(ctx):
            obj = payload if ctx.rank == root else None
            out = yield from ctx.world.bcast(obj, root=root,
                                             algorithm=algorithm)
            return out

        res = run_spmd(prog, size, params=PARAMS)
        for value in res.return_values:
            assert np.array_equal(value, payload)

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=16),
        root=st.integers(min_value=0, max_value=15),
    )
    def test_scatter_gather_inverse(self, size, root):
        root = root % size

        def prog(ctx):
            parts = (
                [float(i) for i in range(size)] if ctx.rank == root else None
            )
            mine = yield from ctx.world.scatter(parts, root)
            assert mine == float(ctx.rank)
            out = yield from ctx.world.gather(mine, root)
            return out

        res = run_spmd(prog, size, params=PARAMS)
        assert res.return_values[root] == [float(i) for i in range(size)]

    @settings(max_examples=20, deadline=None)
    @given(size=st.integers(min_value=1, max_value=16))
    def test_allreduce_equals_sum(self, size):
        def prog(ctx):
            out = yield from ctx.world.allreduce(float(ctx.rank))
            return out

        res = run_spmd(prog, size, params=PARAMS)
        expected = float(sum(range(size)))
        for v in res.return_values:
            assert v == pytest.approx(expected)


class TestSimulatorProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_clock_accounting_consistent(self, size, seed):
        """For random communication patterns: clocks non-negative and
        comm + compute never exceeds the clock."""
        rng = np.random.default_rng(seed)
        compute = rng.uniform(0, 1e-3, size)

        def prog(ctx):
            comm = ctx.world
            yield from ctx.compute(float(compute[ctx.rank]))
            # Ring exchange, then a broadcast.
            right = (ctx.rank + 1) % comm.size
            left = (ctx.rank - 1) % comm.size
            yield from comm.sendrecv(np.zeros(16), right, left)
            obj = np.ones(8) if ctx.rank == 0 else None
            yield from comm.bcast(obj, root=0)
            return None

        res = run_spmd(prog, size, params=PARAMS)
        for s in res.stats:
            assert s.clock >= 0
            assert s.comm_time + s.compute_time <= s.clock + 1e-12


class TestModelProperties:
    @settings(max_examples=60)
    @given(
        n=st.sampled_from([256, 1024, 4096, 65536]),
        p=st.sampled_from([16, 64, 256, 1024, 4096]),
        b=st.sampled_from([1, 8, 64, 256]),
        model=st.sampled_from([BINOMIAL_MODEL, VANDEGEIJN_MODEL]),
    )
    def test_hsumma_degenerates_to_summa(self, n, p, b, model):
        if b > n:
            return
        s = summa_communication_cost(n, p, b, 1e-5, 1e-9, model)
        for G in (1, p):
            hs = hsumma_communication_cost(n, p, G, b, 1e-5, 1e-9, model)
            assert hs == pytest.approx(s, rel=1e-12)

    @settings(max_examples=60)
    @given(
        n=st.sampled_from([1024, 65536, 2**22]),
        p=st.sampled_from([64, 4096, 2**20]),
        b=st.sampled_from([16, 256]),
        alpha=st.floats(min_value=1e-7, max_value=1e-3),
        beta=st.floats(min_value=1e-12, max_value=1e-8),
    )
    def test_threshold_decides_extremum(self, n, p, b, alpha, beta):
        """eq. 10/11: the sign of alpha/beta - 2nb/p decides whether the
        interior point beats the edges."""
        kind = predicted_extremum_kind(n, b, p, alpha, beta)
        q = math.sqrt(p)
        mid = hsumma_communication_cost(n, p, q, b, alpha, beta,
                                        VANDEGEIJN_MODEL)
        edge = hsumma_communication_cost(n, p, 1, b, alpha, beta,
                                         VANDEGEIJN_MODEL)
        if kind == "minimum":
            assert mid <= edge + 1e-15
        elif kind == "maximum":
            assert mid >= edge - 1e-15

    @settings(max_examples=60)
    @given(
        n=st.sampled_from([1024, 65536]),
        p=st.sampled_from([64, 4096]),
        b=st.sampled_from([16, 64]),
        G=st.floats(min_value=1.01, max_value=4000),
        alpha=st.floats(min_value=1e-7, max_value=1e-3),
        beta=st.floats(min_value=1e-12, max_value=1e-8),
    )
    def test_derivative_sign_matches_numeric(self, n, p, b, G, alpha, beta):
        """eq. 9 agrees with a central difference of eq. 3-5."""
        if G >= p:
            return
        d_analytic = vdg_cost_derivative(n, p, G, b, alpha, beta)
        eps = G * 1e-6
        def f(g):
            return hsumma_communication_cost(
                n, p, g, b, alpha, beta, VANDEGEIJN_MODEL
            )
        d_numeric = (f(G + eps) - f(G - eps)) / (2 * eps)
        assert d_analytic == pytest.approx(d_numeric, rel=1e-2, abs=1e-9)

    @settings(max_examples=40)
    @given(
        n=st.integers(min_value=64, max_value=10_000),
        b=st.integers(min_value=1, max_value=64),
        p=st.integers(min_value=2, max_value=100_000),
    )
    def test_critical_ratio_positive_monotone(self, n, b, p):
        r = critical_ratio(n, b, p)
        assert r > 0
        assert critical_ratio(2 * n, b, p) == pytest.approx(2 * r)
