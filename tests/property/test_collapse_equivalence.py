"""Property-based validation of symmetry collapse and the predictor.

Three contracts, swept with Hypothesis over valid configurations:

* **Collapsed macro == per-rank macro, bit for bit.**  On homogeneous
  networks with a participant-invariant coster, stepping only the probe
  set and replicating the rest must reproduce every per-rank clock,
  comm and compute figure *exactly* (``==``, not approx) — the
  congruence argument of ``docs/cost_model.md`` holds or the engine
  must have refused to collapse.
* **Predictor == macro.**  The closed-form predictor reproduces the
  macro backend's total and compute times bit-for-bit, and its comm
  time to 1e-9 relative (hierarchical schedules group the identical
  per-step float additions differently).
* **Asymmetry degrades safely.**  Faults are refused outright by the
  macro backend; heterogeneous costers, real (numpy) payloads and
  tracing fall back to the per-rank path — observable through
  ``collapse_report`` — and numerics stay correct.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cyclic import run_cyclic
from repro.core.grouping import choose_group_grid, valid_group_counts
from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator.backends import MacroBackend
from repro.simulator.collapse import (
    cyclic_symmetry,
    hsumma_symmetry,
    summa_symmetry,
)

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
GAMMA = 1e-10
COMM_TOL = 1e-9


def _run_both(runner, symmetry, nranks, **kwargs):
    """Run ``runner`` twice on identical prebuilt macro backends — one
    per-rank (no symmetry declared), one collapsed — and return the two
    sims plus the collapsed backend's report."""
    net = HomogeneousNetwork(nranks, PARAMS)
    ref = MacroBackend(net)
    col = MacroBackend(net, symmetry=symmetry)
    _, sim_ref = runner(network=net, backend=ref, **kwargs)
    _, sim_col = runner(network=net, backend=col, **kwargs)
    return sim_ref, sim_col, col.collapse_report


def _assert_bit_identical(sim_ref, sim_col):
    assert sim_col.nranks == sim_ref.nranks
    for a, b in zip(sim_ref.stats, sim_col.stats):
        assert b.clock == a.clock, f"rank {a.rank} clock"
        assert b.comm_time == a.comm_time, f"rank {a.rank} comm"
        assert b.compute_time == a.compute_time, f"rank {a.rank} compute"


@st.composite
def summa_configs(draw):
    s = draw(st.sampled_from([2, 4, 8]))
    t = draw(st.sampled_from([2, 4, 8]))
    block = draw(st.sampled_from([1, 2, 4]))
    unit = block * s * t
    l = unit * draw(st.sampled_from([1, 2]))
    m = s * t * draw(st.sampled_from([1, 2]))
    n = s * t * draw(st.sampled_from([1, 3]))
    bcast = draw(st.sampled_from(["binomial", "vandegeijn"]))
    return (s, t, block, m, l, n, bcast)


@st.composite
def hsumma_configs(draw):
    """Includes strip group grids (I==1 or J==1) — the probe-set
    special cases — via the full valid_group_counts range."""
    s = draw(st.sampled_from([2, 4]))
    t = draw(st.sampled_from([2, 4, 8]))
    G = draw(st.sampled_from(valid_group_counts(s, t)))
    outer = draw(st.sampled_from([2, 4]))
    inner = draw(st.sampled_from([b for b in (1, 2) if outer % b == 0]))
    unit = outer * s * t
    l = unit * draw(st.sampled_from([1, 2]))
    m = s * t * draw(st.sampled_from([1, 2]))
    n = s * t * draw(st.sampled_from([1, 2]))
    bcast = draw(st.sampled_from(["binomial", "vandegeijn"]))
    return (s, t, G, outer, inner, m, l, n, bcast)


@st.composite
def cyclic_configs(draw):
    s = draw(st.sampled_from([2, 4]))
    t = draw(st.sampled_from([2, 4]))
    I = draw(st.sampled_from([i for i in (1, 2) if s % i == 0]))
    J = draw(st.sampled_from([j for j in (1, 2, 4) if t % j == 0]))
    nb = draw(st.sampled_from([1, 2]))
    unit = nb * s * t
    l = unit * draw(st.sampled_from([1, 2]))
    m = s * t * draw(st.sampled_from([1, 2]))
    n = s * t * draw(st.sampled_from([1, 2]))
    return (s, t, I, J, nb, m, l, n)


class TestCollapsedEqualsPerRank:
    """Collapsed macro must be bit-identical to per-rank macro."""

    @settings(max_examples=20, deadline=None)
    @given(cfg=summa_configs())
    def test_summa(self, cfg):
        s, t, block, m, l, n, bcast = cfg
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_summa(
                PhantomArray((m, l)), PhantomArray((l, n)),
                grid=(s, t), block=block, gamma=GAMMA,
                options=CollectiveOptions(bcast=bcast), **kw,
            ),
            summa_symmetry(s, t), s * t,
        )
        assert report["mode"] == "collapsed"
        # The probe set is an L-shape — one full probe row plus the
        # probe column of every remaining row — so flat SUMMA steps
        # s + t - 1 ranks however large the grid.
        assert report["probed"] == s + t - 1
        _assert_bit_identical(sim_ref, sim_col)

    @settings(max_examples=20, deadline=None)
    @given(cfg=hsumma_configs())
    def test_hsumma(self, cfg):
        s, t, G, outer, inner, m, l, n, bcast = cfg
        I, J = choose_group_grid(s, t, G)
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_hsumma(
                PhantomArray((m, l)), PhantomArray((l, n)),
                grid=(s, t), groups=G, outer_block=outer,
                inner_block=inner, gamma=GAMMA,
                options=CollectiveOptions(bcast=bcast), **kw,
            ),
            hsumma_symmetry(s, t, I, J), s * t,
        )
        assert report["mode"] == "collapsed"
        # The probe set is one group (or one strip of it), never the
        # whole grid — otherwise collapsing would be pointless.
        assert report["probed"] < s * t
        _assert_bit_identical(sim_ref, sim_col)

    @settings(max_examples=15, deadline=None)
    @given(cfg=cyclic_configs())
    def test_cyclic(self, cfg):
        s, t, I, J, nb, m, l, n = cfg
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_cyclic(
                PhantomArray((m, l)), PhantomArray((l, n)),
                grid=(s, t), nb=nb, groups=(I, J), gamma=GAMMA, **kw,
            ),
            cyclic_symmetry(s, t, I, J), s * t,
        )
        assert report["mode"] == "collapsed"
        _assert_bit_identical(sim_ref, sim_col)


class TestPredictorMatchesMacro:
    """Closed-form predictor vs the (collapsed) macro backend."""

    @settings(max_examples=15, deadline=None)
    @given(cfg=summa_configs())
    def test_summa(self, cfg):
        s, t, block, m, l, n, bcast = cfg
        opts = CollectiveOptions(bcast=bcast)
        kwargs = dict(grid=(s, t), block=block, params=PARAMS,
                      gamma=GAMMA, options=opts)
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        _, sim_macro = run_summa(A, B, backend="macro", **kwargs)
        _, sim_pred = run_summa(A, B, backend="predictor", **kwargs)
        # Flat schedules accumulate comm in the same order on every
        # rank, so even comm_time is bit-identical.
        assert sim_pred.total_time == sim_macro.total_time
        assert sim_pred.compute_time == sim_macro.compute_time
        assert sim_pred.comm_time == sim_macro.comm_time

    @settings(max_examples=15, deadline=None)
    @given(cfg=hsumma_configs())
    def test_hsumma(self, cfg):
        s, t, G, outer, inner, m, l, n, bcast = cfg
        opts = CollectiveOptions(bcast=bcast)
        kwargs = dict(grid=(s, t), groups=G, outer_block=outer,
                      inner_block=inner, params=PARAMS, gamma=GAMMA,
                      options=opts)
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        _, sim_macro = run_hsumma(A, B, backend="macro", **kwargs)
        _, sim_pred = run_hsumma(A, B, backend="predictor", **kwargs)
        assert sim_pred.total_time == sim_macro.total_time
        assert sim_pred.compute_time == sim_macro.compute_time
        # Hierarchical schedules group the same per-step additions
        # differently across ranks; the sums agree to float
        # re-association only.
        assert sim_pred.comm_time == pytest.approx(
            sim_macro.comm_time, rel=COMM_TOL
        )

    @settings(max_examples=10, deadline=None)
    @given(cfg=cyclic_configs())
    def test_cyclic(self, cfg):
        s, t, I, J, nb, m, l, n = cfg
        kwargs = dict(grid=(s, t), nb=nb, groups=(I, J), params=PARAMS,
                      gamma=GAMMA)
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        _, sim_macro = run_cyclic(A, B, backend="macro", **kwargs)
        _, sim_pred = run_cyclic(A, B, backend="predictor", **kwargs)
        assert sim_pred.total_time == sim_macro.total_time
        assert sim_pred.compute_time == sim_macro.compute_time
        assert sim_pred.comm_time == pytest.approx(
            sim_macro.comm_time, rel=COMM_TOL
        )


class TestAsymmetryFallsBack:
    """Symmetry breakage must be refused or fall back, never mispriced."""

    def test_macro_rejects_faults(self):
        A, B = PhantomArray((16, 16)), PhantomArray((16, 16))
        with pytest.raises(ConfigurationError, match="fault"):
            run_summa(A, B, grid=(4, 4), block=4, params=PARAMS,
                      backend="macro", faults="drop(p=0.02)")

    def test_heterogeneous_coster_blocks_collapse(self):
        from repro.network.mapping import block_mapping

        net = HomogeneousNetwork(
            16, PARAMS,
            intra_params=HockneyParams(alpha=1e-6, beta=1e-10),
            mapping=block_mapping(16, 4),
        )
        col = MacroBackend(net, symmetry=summa_symmetry(4, 4))
        A, B = PhantomArray((16, 16)), PhantomArray((16, 16))
        _, sim = run_summa(A, B, grid=(4, 4), block=4, network=net,
                           backend=col, gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        assert "participant identity" in col.collapse_report["reason"]
        assert sim.total_time > 0.0

    def test_real_data_falls_back_with_correct_product(self):
        rng = np.random.default_rng(7)
        A = rng.standard_normal((16, 16))
        B = rng.standard_normal((16, 16))
        net = HomogeneousNetwork(16, PARAMS)
        col = MacroBackend(net, symmetry=summa_symmetry(4, 4))
        C, sim = run_summa(A, B, grid=(4, 4), block=4, network=net,
                           backend=col, gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        np.testing.assert_allclose(C, A @ B, rtol=1e-10)
        # The fallback is the ordinary per-rank macro path: it must
        # agree bit-for-bit with a backend that never tried to collapse.
        ref = MacroBackend(net)
        _, sim_ref = run_summa(A, B, grid=(4, 4), block=4, network=net,
                               backend=ref, gamma=GAMMA)
        _assert_bit_identical(sim_ref, sim)

    def test_tracing_blocks_collapse(self):
        net = HomogeneousNetwork(16, PARAMS)
        col = MacroBackend(net, collect_trace=True,
                           symmetry=summa_symmetry(4, 4))
        A, B = PhantomArray((16, 16)), PhantomArray((16, 16))
        run_summa(A, B, grid=(4, 4), block=4, network=net, backend=col,
                  gamma=GAMMA, trace=True)
        assert col.collapse_report["mode"] == "per-rank"
        assert "tracing" in col.collapse_report["reason"]


class TestPredictorGates:
    """The predictor refuses everything it cannot price."""

    def test_rejects_real_data(self):
        A = np.ones((16, 16))
        with pytest.raises(ConfigurationError, match="Phantom"):
            run_summa(A, A, grid=(4, 4), block=4, params=PARAMS,
                      backend="predictor")

    def test_rejects_faults(self):
        A = PhantomArray((16, 16))
        with pytest.raises(ConfigurationError, match="fault"):
            run_summa(A, A, grid=(4, 4), block=4, params=PARAMS,
                      backend="predictor", faults="drop(p=0.02)")

    def test_rejects_verify(self):
        A = PhantomArray((16, 16))
        with pytest.raises(ConfigurationError, match="verif"):
            run_summa(A, A, grid=(4, 4), block=4, params=PARAMS,
                      backend="predictor", verify=True)

    def test_rejects_overlap_cyclic(self):
        A = PhantomArray((16, 16))
        with pytest.raises(ConfigurationError, match="overlap"):
            run_cyclic(A, A, grid=(4, 4), nb=4, params=PARAMS,
                       backend="predictor", overlap=True)

    def test_rejects_heterogeneous_network(self):
        from repro.network.mapping import block_mapping

        net = HomogeneousNetwork(
            16, PARAMS,
            intra_params=HockneyParams(alpha=1e-6, beta=1e-10),
            mapping=block_mapping(16, 4),
        )
        A = PhantomArray((16, 16))
        with pytest.raises(ConfigurationError, match="macro"):
            run_summa(A, A, grid=(4, 4), block=4, network=net,
                      backend="predictor")


# -- the PR-9 families: torus shifts, layers, levels ----------------------

from repro.algorithms.algo25d import run_25d
from repro.algorithms.cannon import run_cannon
from repro.algorithms.dns3d import run_dns3d
from repro.algorithms.fox import run_fox
from repro.core.hsumma import run_hsumma_multilevel
from repro.simulator.collapse import (
    cannon_symmetry,
    dns3d_symmetry,
    fox_symmetry,
    multilevel_symmetry,
    summa25d_symmetry,
)


@st.composite
def torus_sizes(draw):
    """Square torus grids with tile sizes divisible by q."""
    q = draw(st.sampled_from([3, 4, 5]))
    m = q * draw(st.sampled_from([8, 16]))
    l = q * draw(st.sampled_from([8, 16]))
    n = q * draw(st.sampled_from([8, 16]))
    return (q, m, l, n)


@st.composite
def dns_sizes(draw):
    """Cubes large enough that the corner probe set does not cover the
    grid (q <= 3 legitimately falls back per-rank)."""
    q = draw(st.sampled_from([4, 5]))
    m = q * draw(st.sampled_from([8, 16]))
    l = q * draw(st.sampled_from([8, 16]))
    n = q * draw(st.sampled_from([8, 16]))
    return (q, m, l, n)


@st.composite
def rep_sizes(draw):
    """(q, c) layouts valid for run_25d: p = q^2 c, c | q."""
    q, c = draw(st.sampled_from([(2, 2), (4, 2), (4, 4), (6, 2), (8, 2)]))
    m = q * draw(st.sampled_from([8, 16]))
    l = q * draw(st.sampled_from([8, 16]))
    n = q * draw(st.sampled_from([8, 16]))
    return (q, c, m, l, n)


MULTILEVEL_CONFIGS = [
    # (s, t, row_factors, col_factors, blocks)
    (4, 4, (2, 2), (2, 2), (8, 4)),
    (4, 8, (2, 2), (2, 4), (8, 4)),
    (8, 8, (2, 2, 2), (2, 2, 2), (8, 4, 2)),
    (4, 4, (4,), (4,), (4,)),
]


class TestNewFamiliesCollapse:
    """Collapsed macro == per-rank macro, bit for bit, for the torus
    (Cannon/Fox), layered (DNS-3D/2.5D) and level-wise (multilevel)
    symmetry declarations."""

    @settings(max_examples=12, deadline=None)
    @given(cfg=torus_sizes())
    def test_cannon(self, cfg):
        q, m, l, n = cfg
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_cannon(
                PhantomArray((m, l)), PhantomArray((l, n)),
                grid=(q, q), gamma=GAMMA, **kw,
            ),
            cannon_symmetry(q), q * q,
        )
        assert report["mode"] == "collapsed"
        assert report["probed"] < q * q
        _assert_bit_identical(sim_ref, sim_col)

    @settings(max_examples=12, deadline=None)
    @given(cfg=torus_sizes())
    def test_fox(self, cfg):
        q, m, l, n = cfg
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_fox(
                PhantomArray((m, l)), PhantomArray((l, n)),
                grid=(q, q), gamma=GAMMA, **kw,
            ),
            fox_symmetry(q), q * q,
        )
        assert report["mode"] == "collapsed"
        assert report["probed"] < q * q
        _assert_bit_identical(sim_ref, sim_col)

    @settings(max_examples=8, deadline=None)
    @given(cfg=dns_sizes())
    def test_dns3d(self, cfg):
        q, m, l, n = cfg
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_dns3d(
                PhantomArray((m, l)), PhantomArray((l, n)),
                nprocs=q**3, gamma=GAMMA, **kw,
            ),
            dns3d_symmetry(q), q**3,
        )
        assert report["mode"] == "collapsed"
        assert report["probed"] < q**3
        _assert_bit_identical(sim_ref, sim_col)

    @settings(max_examples=10, deadline=None)
    @given(cfg=rep_sizes())
    def test_25d(self, cfg):
        q, c, m, l, n = cfg
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_25d(
                PhantomArray((m, l)), PhantomArray((l, n)),
                nprocs=q * q * c, replication=c, gamma=GAMMA, **kw,
            ),
            summa25d_symmetry(q, c), q * q * c,
        )
        assert report["mode"] == "collapsed"
        assert report["probed"] < q * q * c
        _assert_bit_identical(sim_ref, sim_col)

    @pytest.mark.parametrize("cfg", MULTILEVEL_CONFIGS)
    def test_multilevel(self, cfg):
        s, t, rf, cf, blocks = cfg
        m = l = n = max(s, t) * blocks[0]
        sim_ref, sim_col, report = _run_both(
            lambda **kw: run_hsumma_multilevel(
                PhantomArray((m, l)), PhantomArray((l, n)),
                grid=(s, t), row_factors=rf, col_factors=cf,
                blocks=blocks, gamma=GAMMA, **kw,
            ),
            multilevel_symmetry(s, t, rf, cf), s * t,
        )
        assert report["mode"] == "collapsed"
        assert report["probed"] < s * t
        _assert_bit_identical(sim_ref, sim_col)


class TestNewFamiliesPredictor:
    """Predictor chains vs the macro backend for the new families.

    Fox, DNS-3D and 2.5D schedules are lockstep (every rank's comm
    accumulates in the same order), so even comm_time is bit-identical;
    Cannon's sendrecv completion splits the send/recv legs differently
    across ranks, so its comm agrees to float re-association only."""

    @settings(max_examples=10, deadline=None)
    @given(cfg=torus_sizes())
    def test_cannon(self, cfg):
        q, m, l, n = cfg
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        kwargs = dict(grid=(q, q), params=PARAMS, gamma=GAMMA)
        _, sim_macro = run_cannon(A, B, backend="macro", **kwargs)
        _, sim_pred = run_cannon(A, B, backend="predictor", **kwargs)
        assert sim_pred.total_time == sim_macro.total_time
        assert sim_pred.compute_time == sim_macro.compute_time
        assert sim_pred.comm_time == pytest.approx(
            sim_macro.comm_time, rel=COMM_TOL
        )

    @settings(max_examples=10, deadline=None)
    @given(cfg=torus_sizes())
    def test_fox(self, cfg):
        q, m, l, n = cfg
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        kwargs = dict(grid=(q, q), params=PARAMS, gamma=GAMMA)
        _, sim_macro = run_fox(A, B, backend="macro", **kwargs)
        _, sim_pred = run_fox(A, B, backend="predictor", **kwargs)
        assert sim_pred.total_time == sim_macro.total_time
        assert sim_pred.compute_time == sim_macro.compute_time
        assert sim_pred.comm_time == sim_macro.comm_time

    @settings(max_examples=8, deadline=None)
    @given(cfg=dns_sizes())
    def test_dns3d(self, cfg):
        q, m, l, n = cfg
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        kwargs = dict(nprocs=q**3, params=PARAMS, gamma=GAMMA)
        _, sim_macro = run_dns3d(A, B, backend="macro", **kwargs)
        _, sim_pred = run_dns3d(A, B, backend="predictor", **kwargs)
        assert sim_pred.total_time == sim_macro.total_time
        assert sim_pred.compute_time == sim_macro.compute_time
        assert sim_pred.comm_time == sim_macro.comm_time

    @settings(max_examples=10, deadline=None)
    @given(cfg=rep_sizes())
    def test_25d(self, cfg):
        q, c, m, l, n = cfg
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        kwargs = dict(nprocs=q * q * c, replication=c, params=PARAMS,
                      gamma=GAMMA)
        _, sim_macro = run_25d(A, B, backend="macro", **kwargs)
        _, sim_pred = run_25d(A, B, backend="predictor", **kwargs)
        assert sim_pred.total_time == sim_macro.total_time
        assert sim_pred.compute_time == sim_macro.compute_time
        assert sim_pred.comm_time == sim_macro.comm_time


class TestNewFamiliesFallBack:
    """One deliberately broken-symmetry case per new runner: the
    collapse must fall back per-rank (never misprice), and where real
    data is involved the numerics must stay correct."""

    def test_cannon_real_data_falls_back_with_correct_product(self):
        rng = np.random.default_rng(11)
        q = 3
        A = rng.standard_normal((24, 24))
        B = rng.standard_normal((24, 24))
        net = HomogeneousNetwork(q * q, PARAMS)
        col = MacroBackend(net, symmetry=cannon_symmetry(q))
        C, sim = run_cannon(A, B, grid=(q, q), network=net, backend=col,
                            gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        np.testing.assert_allclose(C, A @ B, rtol=1e-10)
        ref = MacroBackend(net)
        _, sim_ref = run_cannon(A, B, grid=(q, q), network=net,
                                backend=ref, gamma=GAMMA)
        _assert_bit_identical(sim_ref, sim)

    def test_fox_eager_protocol_blocks_collapse(self):
        q = 4
        net = HomogeneousNetwork(q * q, PARAMS)
        col = MacroBackend(net, eager_threshold=1 << 20,
                           symmetry=fox_symmetry(q))
        A, B = PhantomArray((32, 32)), PhantomArray((32, 32))
        _, sim = run_fox(A, B, grid=(q, q), network=net, backend=col,
                         gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        assert "eager" in col.collapse_report["reason"]
        assert sim.total_time > 0.0

    def test_cannon_nonuniform_network_breaks_p2p_symmetry(self):
        """An explicitly participant-invariant coster slips past the
        eligibility blocker, but the collapsed engine's own uniform-wire
        guard must still refuse to replicate p2p times measured on a
        mapped two-tier network."""
        from repro.experiments.stepmodel import AnalyticCoster
        from repro.network.mapping import block_mapping

        q = 4
        net = HomogeneousNetwork(
            q * q, PARAMS,
            intra_params=HockneyParams(alpha=1e-6, beta=1e-10),
            mapping=block_mapping(q * q, 4),
        )
        col = MacroBackend(net, coster=AnalyticCoster(PARAMS, "binomial"),
                           symmetry=cannon_symmetry(q))
        A, B = PhantomArray((32, 32)), PhantomArray((32, 32))
        _, sim = run_cannon(A, B, grid=(q, q), network=net, backend=col,
                            gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        assert "uniform network" in col.collapse_report["reason"]
        assert sim.total_time > 0.0

    def test_dns3d_small_cube_probe_covers_grid(self):
        """q <= 3 puts every rank inside the corner probe set; the
        engine must notice collapsing buys nothing and fall back."""
        q = 3
        net = HomogeneousNetwork(q**3, PARAMS)
        col = MacroBackend(net, symmetry=dns3d_symmetry(q))
        A, B = PhantomArray((24, 24)), PhantomArray((24, 24))
        _, sim = run_dns3d(A, B, nprocs=q**3, network=net, backend=col,
                           gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        assert "covers" in col.collapse_report["reason"]
        ref = MacroBackend(net)
        _, sim_ref = run_dns3d(A, B, nprocs=q**3, network=net,
                               backend=ref, gamma=GAMMA)
        _assert_bit_identical(sim_ref, sim)

    def test_25d_tracing_blocks_collapse(self):
        q, c = 4, 2
        net = HomogeneousNetwork(q * q * c, PARAMS)
        col = MacroBackend(net, collect_trace=True,
                           symmetry=summa25d_symmetry(q, c))
        A, B = PhantomArray((32, 32)), PhantomArray((32, 32))
        _, sim = run_25d(A, B, nprocs=q * q * c, replication=c,
                         network=net, backend=col, gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        assert "tracing" in col.collapse_report["reason"]

    def test_multilevel_real_data_falls_back_with_correct_product(self):
        rng = np.random.default_rng(13)
        A = rng.standard_normal((32, 32))
        B = rng.standard_normal((32, 32))
        net = HomogeneousNetwork(16, PARAMS)
        col = MacroBackend(net, symmetry=multilevel_symmetry(
            4, 4, (2, 2), (2, 2)))
        C, sim = run_hsumma_multilevel(
            A, B, grid=(4, 4), row_factors=(2, 2), col_factors=(2, 2),
            blocks=(8, 4), network=net, backend=col, gamma=GAMMA)
        assert col.collapse_report["mode"] == "per-rank"
        np.testing.assert_allclose(C, A @ B, rtol=1e-10)
