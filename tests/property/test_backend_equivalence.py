"""Property-based cross-validation of the macro backend against the
full discrete-event simulation.

On homogeneous networks the macro backend's barrier-per-collective
clocking and the analytic collective costs reproduce the DES timings
*exactly* (up to float association) for the bulk-synchronous SUMMA
family — for every valid power-of-two configuration, not just the
hand-picked ones in the unit tests.  Hypothesis sweeps the space.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import valid_group_counts
from repro.core.hsumma import run_hsumma, run_hsumma_multilevel
from repro.core.summa import run_summa
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
GAMMA = 1e-10
TOL = 1e-9


def _assert_same_times(sim_des, sim_macro):
    assert sim_macro.total_time == pytest.approx(sim_des.total_time, rel=TOL)
    assert sim_macro.comm_time == pytest.approx(sim_des.comm_time, rel=TOL)
    assert sim_macro.compute_time == pytest.approx(
        sim_des.compute_time, rel=TOL
    )


@st.composite
def summa_configs(draw):
    """(s, t, block, m, l, n, bcast) with power-of-two grids.

    ``m``/``n`` are multiples of ``s*t`` so every broadcast payload
    splits evenly among its communicator — the granularity the analytic
    scatter/allgather (vandegeijn) forms assume.  With indivisible
    payloads the DES charges the integer-element split, which is a
    modelling difference, not a float error.
    """
    s = draw(st.sampled_from([1, 2, 4]))
    t = draw(st.sampled_from([1, 2, 4]))
    block = draw(st.sampled_from([1, 2, 4]))
    unit = block * s * t  # block divides both l/s and l/t
    l = unit * draw(st.sampled_from([1, 2, 3]))
    m = s * t * draw(st.sampled_from([1, 2, 5]))
    n = s * t * draw(st.sampled_from([1, 3]))
    bcast = draw(st.sampled_from(["binomial", "vandegeijn"]))
    return (s, t, block, m, l, n, bcast)


@st.composite
def hsumma_configs(draw):
    """(s, t, (I, J), outer, inner, m, l, n, bcast), power-of-two."""
    s = draw(st.sampled_from([2, 4]))
    t = draw(st.sampled_from([2, 4]))
    G = draw(st.sampled_from(valid_group_counts(s, t)))
    outer = draw(st.sampled_from([2, 4]))
    inner = draw(st.sampled_from([b for b in (1, 2, 4) if outer % b == 0]))
    unit = outer * s * t
    l = unit * draw(st.sampled_from([1, 2]))
    m = s * t * draw(st.sampled_from([1, 2]))
    n = s * t * draw(st.sampled_from([1, 2]))
    bcast = draw(st.sampled_from(["binomial", "vandegeijn"]))
    return (s, t, G, outer, inner, m, l, n, bcast)


class TestMacroEqualsDes:
    @settings(max_examples=25, deadline=None)
    @given(cfg=summa_configs())
    def test_summa(self, cfg):
        s, t, block, m, l, n, bcast = cfg
        kwargs = dict(
            grid=(s, t), block=block, params=PARAMS, gamma=GAMMA,
            options=CollectiveOptions(bcast=bcast),
        )
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        _, des = run_summa(A, B, **kwargs)
        _, macro = run_summa(A, B, backend="macro", **kwargs)
        _assert_same_times(des, macro)

    @settings(max_examples=25, deadline=None)
    @given(cfg=hsumma_configs())
    def test_hsumma(self, cfg):
        s, t, G, outer, inner, m, l, n, bcast = cfg
        kwargs = dict(
            grid=(s, t), groups=G, outer_block=outer, inner_block=inner,
            params=PARAMS, gamma=GAMMA, options=CollectiveOptions(bcast=bcast),
        )
        A, B = PhantomArray((m, l)), PhantomArray((l, n))
        _, des = run_hsumma(A, B, **kwargs)
        _, macro = run_hsumma(A, B, backend="macro", **kwargs)
        _assert_same_times(des, macro)

    @settings(max_examples=8, deadline=None)
    @given(
        case=st.sampled_from([
            (((2, 2), (2, 2)), (8, 8)),
            (((2, 2), (2, 2)), (8, 4)),
            (((4, 2), (2, 4)), (16, 8)),
            (((2, 2, 2), (2, 2, 2)), (16, 8, 4)),
            (((2, 2, 2), (2, 2, 2)), (8, 8, 8)),
        ]),
    )
    def test_multilevel(self, case):
        (row_factors, col_factors), blocks = case
        s = 1
        for f in row_factors:
            s *= f
        t = 1
        for f in col_factors:
            t *= f
        n = blocks[0] * s * t
        kwargs = dict(
            grid=(s, t), row_factors=row_factors, col_factors=col_factors,
            blocks=blocks, params=PARAMS, gamma=GAMMA,
        )
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, des = run_hsumma_multilevel(A, B, **kwargs)
        _, macro = run_hsumma_multilevel(A, B, backend="macro", **kwargs)
        _assert_same_times(des, macro)
