"""Properties pinning the segmented family's overlap correctness.

Three claims the pipeline-depth machinery rests on:

1.  *Never slower at the chosen depth*: running a segmented broadcast
    at the registry's ``s*`` is never slower (up to a small tolerance
    for integer rounding of the optimum) than the unsegmented ``s=1``
    run of the same algorithm, on the real DES — pipelining must not
    be a pessimisation anywhere in the sampled (p, m) space.  Note the
    literal "for any s" property is false (gross over-segmentation
    pays ``S*alpha`` fill), which is exactly why ``s*`` exists.
2.  *The registry optimum is the discrete optimum*: the closed form at
    ``optimal_pipeline_segments`` is within rounding tolerance of the
    exhaustive minimum over segment counts.
3.  *K-schedule determinism under transient faults*: every new
    algorithm delivers bit-identical payloads under perturbed delivery
    schedules while messages are being dropped and links degraded.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.cost import bcast_time
from repro.costs import optimal_pipeline_segments
from repro.faults import FaultSchedule, LinkDegradation, MessageDrop
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator import run_spmd
from repro.verify import VerifyOptions

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
NEW_ALGOS = ("segmented", "fourcolor", "hypersystolic")


def _bcast_prog(algorithm, payload_factory, segments):
    def prog(ctx):
        ctx.options = ctx.options.replace(bcast_segments=segments)
        payload = payload_factory() if ctx.rank == 0 else None
        out = yield from ctx.world.bcast(payload, root=0,
                                         algorithm=algorithm)
        return out

    return prog


def _des_time(algorithm, p, elements, segments):
    prog = _bcast_prog(algorithm, lambda: PhantomArray((elements,)),
                       segments)
    return run_spmd(prog, p, params=PARAMS).total_time


class TestNeverSlowerAtOptimum:
    @pytest.mark.parametrize("algorithm", NEW_ALGOS + ("pipelined",))
    @settings(max_examples=20, deadline=None)
    @given(p=st.integers(3, 14), log2_elements=st.integers(10, 18))
    def test_s_opt_never_slower_than_unsegmented(self, algorithm, p,
                                                 log2_elements):
        elements = 1 << log2_elements
        s_opt = optimal_pipeline_segments(elements * 8, p,
                                          PARAMS.alpha, PARAMS.beta,
                                          algorithm)
        t_opt = _des_time(algorithm, p, elements, s_opt)
        t_one = _des_time(algorithm, p, elements, 1)
        # 2% headroom: s* is the *closed-form* optimum; the DES adds
        # only the uneven-final-segment quantisation on top.
        assert t_opt <= t_one * 1.02


class TestRegistryOptimum:
    @pytest.mark.parametrize("algorithm", NEW_ALGOS + ("pipelined",))
    @settings(max_examples=30, deadline=None)
    @given(p=st.integers(3, 300), log2_bytes=st.integers(8, 24))
    def test_s_opt_within_rounding_of_discrete_minimum(self, algorithm,
                                                       p, log2_bytes):
        m = float(1 << log2_bytes)
        s_opt = optimal_pipeline_segments(m, p, PARAMS.alpha,
                                          PARAMS.beta, algorithm)
        cost_opt = bcast_time(algorithm, m, p, PARAMS, segments=s_opt)
        sweep = range(1, max(4 * s_opt, 8) + 1)
        best = min(bcast_time(algorithm, m, p, PARAMS, segments=s)
                   for s in sweep)
        # round(s*_continuous) can land one off the discrete argmin;
        # the closed form is flat enough there that 5% always covers it.
        assert cost_opt <= best * 1.05

    @pytest.mark.parametrize("algorithm", NEW_ALGOS)
    def test_large_messages_want_more_segments(self, algorithm):
        depths = [optimal_pipeline_segments(m, 64, PARAMS.alpha,
                                            PARAMS.beta, algorithm)
                  for m in (1 << 10, 1 << 16, 1 << 22)]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]


@st.composite
def transient_schedules(draw):
    """A death-free fault schedule over a small world: message drops
    force retransmissions, degradations skew every wire time."""
    faults = []
    for _ in range(draw(st.integers(1, 2))):
        faults.append(MessageDrop(p=draw(st.floats(0.05, 0.5))))
    for _ in range(draw(st.integers(0, 2))):
        t0 = draw(st.floats(0.0, 0.005))
        faults.append(LinkDegradation(
            alpha_mult=draw(st.floats(1.0, 6.0)),
            beta_mult=draw(st.floats(1.0, 6.0)),
            t0=t0, t1=t0 + draw(st.floats(0.0, 0.05)),
        ))
    return FaultSchedule(seed=draw(st.integers(0, 2 ** 32)), faults=faults)


class TestDeterminismUnderTransients:
    @pytest.mark.parametrize("algorithm", NEW_ALGOS)
    @settings(max_examples=10, deadline=None)
    @given(sched=transient_schedules(), segments=st.integers(1, 5))
    def test_k_schedules_bit_identical(self, algorithm, sched, segments):
        ref = np.arange(60.0)
        prog = _bcast_prog(algorithm, lambda: ref.copy(), segments)
        res = run_spmd(prog, 7, params=PARAMS, faults=sched,
                       verify=VerifyOptions(schedules=3, strict=True))
        assert res.verdict is not None and res.verdict.ok
        for value in res.return_values:
            assert np.array_equal(value, ref)


class TestOverlapRunnerIntegration:
    def test_pipelined_overlap_product_bit_identical(self):
        """Streaming the overlap runner's broadcasts in segments must
        not change a single bit of the product."""
        from repro.core.overlap import run_summa_overlap
        from repro.core.summa import run_summa

        rng = np.random.default_rng(7)
        A = rng.standard_normal((24, 24))
        B = rng.standard_normal((24, 24))
        plain, _ = run_summa(A, B, grid=(2, 2), block=6, params=PARAMS)
        for segments in (1, 2, 3):
            piped, _ = run_summa_overlap(A, B, grid=(2, 2), block=6,
                                         params=PARAMS,
                                         bcast_segments=segments)
            assert np.array_equal(plain, piped)

    def test_depth_knob_reaches_the_wire(self):
        """The depth knob is not decorative: streaming every broadcast
        in 8 segments must multiply the wire messages by 8 while total
        bytes moved stay identical."""
        from repro.core.overlap import run_summa_overlap

        rng = np.random.default_rng(8)
        A = rng.standard_normal((32, 32))
        B = rng.standard_normal((32, 32))
        _, bulk = run_summa_overlap(A, B, grid=(2, 2), block=8,
                                    params=PARAMS)
        _, piped = run_summa_overlap(A, B, grid=(2, 2), block=8,
                                     params=PARAMS, bcast_segments=8)
        msgs = lambda sim: sum(s.messages_sent for s in sim.stats)
        total_bytes = lambda sim: sum(s.bytes_sent for s in sim.stats)
        assert msgs(piped) == 8 * msgs(bulk)
        assert total_bytes(piped) == total_bytes(bulk)
