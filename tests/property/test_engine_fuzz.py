"""Fuzz tests: random (but well-formed) communication schedules through
the engine must terminate with consistent accounting, under every
protocol and contention setting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.network.torus import Torus3D
from repro.simulator.engine import Engine
from repro.simulator.requests import (
    ComputeRequest,
    ISendRequest,
    RecvRequest,
    WaitRequest,
)

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _random_schedule(rng: np.random.Generator, nranks: int, nmsgs: int):
    """A random set of point-to-point messages with unique tags.

    Returns per-rank operation lists.  Senders use isend (so ordering
    constraints cannot deadlock); receivers use blocking recv in a
    rank-locally shuffled order — legal because every (src, dst, tag)
    triple is unique.
    """
    ops: list[list[tuple]] = [[] for _ in range(nranks)]
    recvs: list[list[tuple]] = [[] for _ in range(nranks)]
    for tag in range(nmsgs):
        src, dst = rng.choice(nranks, size=2, replace=False)
        nbytes = int(rng.integers(0, 4096))
        ops[src].append(("isend", int(dst), tag, nbytes))
        recvs[dst].append(("recv", int(src), tag))
    for r in range(nranks):
        rng.shuffle(recvs[r])
        # Interleave compute between operations.
        merged = []
        for op in ops[r] + recvs[r]:
            if rng.random() < 0.3:
                merged.append(("compute", float(rng.uniform(0, 1e-4))))
            merged.append(op)
        ops[r] = merged
    return ops


def _program(oplist):
    def gen():
        handles = []
        nbytes_recv = 0
        for op in oplist:
            if op[0] == "isend":
                _, dst, tag, nbytes = op
                h = yield ISendRequest(dst, tag, b"x" * nbytes)
                handles.append(h)
            elif op[0] == "recv":
                _, src, tag = op
                payload = yield RecvRequest(src, tag)
                nbytes_recv += len(payload)
            else:
                yield ComputeRequest(op[1])
        for h in handles:
            yield WaitRequest(h)
        return nbytes_recv

    return gen()


class TestEngineFuzz:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        nranks=st.integers(min_value=2, max_value=10),
        nmsgs=st.integers(min_value=0, max_value=40),
        eager=st.sampled_from([0, 256, 1 << 20]),
        contention=st.booleans(),
    )
    def test_random_schedules_terminate_consistently(
        self, seed, nranks, nmsgs, eager, contention
    ):
        rng = np.random.default_rng(seed)
        ops = _random_schedule(rng, nranks, nmsgs)
        net = HomogeneousNetwork(nranks, PARAMS)
        engine = Engine(net, eager_threshold=eager, contention=contention)
        res = engine.run([_program(o) for o in ops])

        # Every byte sent was received.
        sent = sum(
            op[3] for rank_ops in ops for op in rank_ops if op[0] == "isend"
        )
        assert sum(res.return_values) == sent
        assert res.total_bytes == sent
        # Accounting invariants.
        for s in res.stats:
            assert s.clock >= 0
            assert s.comm_time >= -1e-15
            assert s.compute_time >= 0
            assert s.comm_time + s.compute_time <= s.clock + 1e-12

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_torus_contention_never_faster(self, seed):
        """Adding contention can only delay a fixed schedule."""
        rng = np.random.default_rng(seed)
        nranks = 8
        ops = _random_schedule(rng, nranks, 20)
        net = Torus3D((2, 2, 2), PARAMS)
        free = Engine(net, contention=False).run([_program(o) for o in ops])
        rng = np.random.default_rng(seed)  # regenerate identical schedule
        ops = _random_schedule(rng, nranks, 20)
        cont = Engine(net, contention=True).run([_program(o) for o in ops])
        assert cont.total_time >= free.total_time - 1e-15

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_trace_consistent_with_stats(self, seed):
        rng = np.random.default_rng(seed)
        nranks = 6
        ops = _random_schedule(rng, nranks, 15)
        net = HomogeneousNetwork(nranks, PARAMS)
        res = Engine(net, collect_trace=True).run([_program(o) for o in ops])
        assert len(res.trace) == res.total_messages
        assert sum(t.nbytes for t in res.trace) == res.total_bytes
        for t in res.trace:
            assert t.finish >= t.start >= 0
