"""Property-based tests for the extension subsystems."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.distribution import BlockCyclicDistribution, BlockDistribution
from repro.blocks.redistribute import run_redistribute
from repro.collectives.alltoall import alltoall_bruck, alltoall_pairwise
from repro.hetero.partition import proportional_partition
from repro.network.model import HockneyParams
from repro.network.piecewise import PiecewiseHockney
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestPartitionProperties:
    @settings(max_examples=80)
    @given(
        total=st.integers(min_value=1, max_value=5000),
        speeds=st.lists(st.floats(min_value=0.01, max_value=100),
                        min_size=1, max_size=12),
    )
    def test_partition_invariants(self, total, speeds):
        if total < len(speeds):
            return
        shares = proportional_partition(total, speeds)
        assert sum(shares) == total
        assert len(shares) == len(speeds)
        assert all(s >= 1 for s in shares)

    @settings(max_examples=40)
    @given(
        total=st.integers(min_value=100, max_value=5000),
        p=st.integers(min_value=1, max_value=10),
        scale=st.floats(min_value=0.1, max_value=10),
    )
    def test_scale_invariance(self, total, p, scale):
        """Scaling all speeds preserves the shares up to remainder-tie
        reshuffling (largest-remainder ties are float-order dependent,
        so exact equality is not guaranteed — but each share may move
        by at most one item)."""
        speeds = [float(i + 1) for i in range(p)]
        a = proportional_partition(total, speeds)
        b = proportional_partition(total, [s * scale for s in speeds])
        assert all(abs(x - y) <= 1 for x, y in zip(a, b))

    @settings(max_examples=40)
    @given(
        total=st.integers(min_value=50, max_value=2000),
        p=st.integers(min_value=2, max_value=8),
    )
    def test_deviation_bounded(self, total, p):
        """Each share is within p of its ideal fractional value."""
        speeds = [float(2**i) for i in range(p)]
        shares = proportional_partition(total, speeds)
        weight = sum(speeds)
        for share, s in zip(shares, speeds):
            ideal = total * s / weight
            assert abs(share - ideal) <= p


class TestAlltoallProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        fn=st.sampled_from([alltoall_pairwise, alltoall_bruck]),
        size=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_permutation_property(self, fn, size, seed):
        """All-to-all is a transpose: out[r][s] == in[s][r]."""
        rng = np.random.default_rng(seed)
        payloads = rng.integers(0, 1000, size=(size, size))

        def prog(ctx):
            parts = [int(payloads[ctx.rank][d]) for d in range(size)]
            out = yield from fn(ctx.world, parts)
            return out

        res = run_spmd(prog, size, params=PARAMS)
        for r in range(size):
            for s in range(size):
                assert res.return_values[r][s] == payloads[s][r]


class TestRedistributeProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        s=st.sampled_from([1, 2, 3]),
        t=st.sampled_from([1, 2, 3]),
        nb=st.sampled_from([1, 2, 3]),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_roundtrip_preserves_matrix(self, s, t, nb, seed):
        rows = nb * s * 4
        cols = nb * t * 4
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((rows, cols))
        blk = BlockDistribution(rows, cols, s, t)
        cyc = BlockCyclicDistribution(rows, cols, s, t, nb, nb)
        out, _ = run_redistribute(M, blk, cyc, params=PARAMS)
        assert np.array_equal(out, M)


class TestPiecewiseProperties:
    @settings(max_examples=40)
    @given(
        alpha=st.floats(min_value=1e-7, max_value=1e-3),
        beta=st.floats(min_value=1e-11, max_value=1e-8),
        sizes=st.lists(st.integers(min_value=0, max_value=1 << 24),
                       min_size=2, max_size=10),
    )
    def test_mpi_like_monotone(self, alpha, beta, sizes):
        model = PiecewiseHockney.mpi_like(alpha, beta)
        sizes = sorted(sizes)
        times = [model.transfer_time(s) for s in sizes]
        assert all(b >= a - 1e-18 for a, b in zip(times, times[1:]))


class TestEagerProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=8),
        threshold=st.sampled_from([0, 64, 1 << 20]),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_collectives_identical_results_any_protocol(
        self, size, threshold, seed
    ):
        """The eager knob changes timing, never data."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(8)

        def prog(ctx):
            obj = data if ctx.rank == 0 else None
            obj = yield from ctx.world.bcast(obj, root=0)
            total = yield from ctx.world.allreduce(float(ctx.rank))
            return (float(obj.sum()), total)

        res = run_spmd(prog, size, params=PARAMS, eager_threshold=threshold)
        expected_sum = float(data.sum())
        expected_total = float(sum(range(size)))
        for dsum, total in res.return_values:
            assert dsum == pytest.approx(expected_sum)
            assert total == pytest.approx(expected_total)
