"""Chaos/property tests: under *any* seeded transient fault schedule the
algorithms must produce bit-identical products, and virtual time must be
monotonically non-decreasing in fault severity."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.faults import (
    FaultSchedule,
    LinkDegradation,
    MessageDrop,
    RankSlowdown,
)
from repro.network.model import HockneyParams

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)

#: Small fixed inputs: the properties quantify over schedules, not data.
_RNG = np.random.default_rng(2024)
A16 = _RNG.standard_normal((16, 16))
B16 = _RNG.standard_normal((16, 16))


@st.composite
def transient_schedules(draw):
    """A random transient (death-free) schedule over a 4-rank world."""
    faults = []
    for _ in range(draw(st.integers(0, 2))):
        faults.append(MessageDrop(
            p=draw(st.floats(0.0, 0.7)),
            src=draw(st.sampled_from([None, 0, 1, 2, 3])),
            dst=draw(st.sampled_from([None, 0, 1, 2, 3])),
        ))
    for _ in range(draw(st.integers(0, 2))):
        t0 = draw(st.floats(0.0, 0.01))
        faults.append(LinkDegradation(
            alpha_mult=draw(st.floats(1.0, 8.0)),
            beta_mult=draw(st.floats(1.0, 8.0)),
            t0=t0, t1=t0 + draw(st.floats(0.0, 0.05)),
        ))
    for _ in range(draw(st.integers(0, 1))):
        faults.append(RankSlowdown(
            rank=draw(st.integers(0, 3)),
            factor=draw(st.floats(1.0, 10.0)),
        ))
    return FaultSchedule(seed=draw(st.integers(0, 2**32)), faults=faults)


class TestBitIdenticalUnderTransients:
    @settings(max_examples=25, deadline=None)
    @given(sched=transient_schedules())
    def test_summa_product_unchanged(self, sched):
        clean, _ = run_summa(A16, B16, grid=(2, 2), block=4, params=PARAMS)
        faulty, sim = run_summa(A16, B16, grid=(2, 2), block=4, params=PARAMS,
                                faults=sched)
        assert np.array_equal(clean, faulty)
        assert sim.total_fault_delay >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(sched=transient_schedules())
    def test_hsumma_product_unchanged(self, sched):
        clean, _ = run_hsumma(A16, B16, grid=(2, 2), groups=2, outer_block=4,
                              params=PARAMS)
        faulty, sim = run_hsumma(A16, B16, grid=(2, 2), groups=2,
                                 outer_block=4, params=PARAMS, faults=sched)
        assert np.array_equal(clean, faulty)

    @settings(max_examples=10, deadline=None)
    @given(sched=transient_schedules(), seed=st.integers(0, 2**16))
    def test_faulty_run_never_faster(self, sched, seed):
        """Faults only add delay: the faulted makespan is bounded below
        by the fault-free one."""
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((16, 16))
        B = rng.standard_normal((16, 16))
        _, clean = run_summa(A, B, grid=(2, 2), block=4, params=PARAMS)
        _, faulty = run_summa(A, B, grid=(2, 2), block=4, params=PARAMS,
                              faults=sched)
        assert faulty.total_time >= clean.total_time


class TestSeverityMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32),
           p_lo=st.floats(0.0, 0.4), p_hi=st.floats(0.0, 0.4))
    def test_more_drops_never_cheaper(self, seed, p_lo, p_hi):
        """With a fixed seed the drop variates are fixed, so raising the
        drop probability can only add retransmissions and delay."""
        p_lo, p_hi = sorted((p_lo, p_hi))
        times = []
        for p in (p_lo, p_hi):
            _, sim = run_summa(A16, B16, grid=(2, 2), block=4, params=PARAMS,
                               faults=FaultSchedule(
                                   seed=seed, faults=[MessageDrop(p=p)]))
            times.append(sim.total_time)
        assert times[1] >= times[0]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32), factor=st.floats(1.0, 8.0))
    def test_degradation_scales_with_factor(self, seed, factor):
        base = FaultSchedule(seed=seed, faults=[
            LinkDegradation(beta_mult=factor)])
        worse = FaultSchedule(seed=seed, faults=[
            LinkDegradation(beta_mult=2.0 * factor)])
        _, lo = run_summa(A16, B16, grid=(2, 2), block=4, params=PARAMS,
                          faults=base)
        _, hi = run_summa(A16, B16, grid=(2, 2), block=4, params=PARAMS,
                          faults=worse)
        assert hi.total_time >= lo.total_time

    def test_drop_ladder_monotone(self):
        """A fixed-seed severity ladder: 0 < 0.1 < 0.3 < 0.6 drop
        probability gives non-decreasing makespans."""
        times = []
        for p in (0.0, 0.1, 0.3, 0.6):
            faults = FaultSchedule(seed=99, faults=[MessageDrop(p=p)])
            _, sim = run_summa(A16, B16, grid=(2, 2), block=4, params=PARAMS,
                               faults=faults)
            times.append(sim.total_time)
        assert times == sorted(times)
