"""Property-based end-to-end tests of SUMMA/HSUMMA over random valid
configurations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks.verify import max_abs_error
from repro.core.grouping import choose_group_grid, valid_group_counts
from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.util.gridmath import divisors

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


@st.composite
def hsumma_configs(draw):
    """A random valid (grid, groups, blocks, n) configuration."""
    s = draw(st.sampled_from([1, 2, 3, 4]))
    t = draw(st.sampled_from([1, 2, 3, 4, 6]))
    counts = valid_group_counts(s, t)
    G = draw(st.sampled_from(counts))
    # Tile extents: outer block must divide l/s and l/t.
    import math

    unit = s * t // math.gcd(s, t)
    outer = draw(st.sampled_from([1, 2, 4]))
    inner = draw(st.sampled_from([d for d in divisors(outer)]))
    l = outer * unit * draw(st.sampled_from([1, 2]))
    m = s * draw(st.sampled_from([1, 3]))
    n = t * draw(st.sampled_from([1, 2]))
    return (s, t, G, outer, inner, m, l, n)


class TestHSummaEndToEnd:
    @settings(max_examples=30, deadline=None)
    @given(cfg=hsumma_configs(), seed=st.integers(0, 2**16))
    def test_correct_for_any_valid_config(self, cfg, seed):
        s, t, G, outer, inner, m, l, n = cfg
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((m, l))
        B = rng.standard_normal((l, n))
        C, _ = run_hsumma(A, B, grid=(s, t), groups=G,
                          outer_block=outer, inner_block=inner,
                          params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-9

    @settings(max_examples=15, deadline=None)
    @given(cfg=hsumma_configs())
    def test_comm_volume_positive_and_finite(self, cfg):
        s, t, G, outer, inner, m, l, n = cfg
        C, sim = run_hsumma(
            PhantomArray((m, l)), PhantomArray((l, n)),
            grid=(s, t), groups=G, outer_block=outer, inner_block=inner,
            params=PARAMS,
        )
        assert np.isfinite(sim.total_time)
        assert sim.total_time >= 0
        if s * t > 1 and l > outer or G not in (1,):
            assert sim.total_time >= 0

    @settings(max_examples=15, deadline=None)
    @given(
        s=st.sampled_from([2, 4]),
        t=st.sampled_from([2, 4]),
        block=st.sampled_from([2, 4, 8]),
        seed=st.integers(0, 2**16),
    )
    def test_summa_equals_hsumma_g1(self, s, t, block, seed):
        """Data AND virtual-time identity at G=1, any config."""
        l = block * s * t
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((l, l))
        B = rng.standard_normal((l, l))
        opts = CollectiveOptions(bcast="vandegeijn")
        C1, sim1 = run_summa(A, B, grid=(s, t), block=block,
                             params=PARAMS, options=opts)
        C2, sim2 = run_hsumma(A, B, grid=(s, t), groups=1,
                              outer_block=block, params=PARAMS, options=opts)
        assert max_abs_error(C1, C2) == 0.0
        assert sim1.total_time == pytest.approx(sim2.total_time)


class TestGroupingProperties:
    @settings(max_examples=50)
    @given(
        s=st.integers(min_value=1, max_value=32),
        t=st.integers(min_value=1, max_value=32),
    )
    def test_choose_group_grid_always_feasible(self, s, t):
        for G in valid_group_counts(s, t):
            I, J = choose_group_grid(s, t, G)
            assert I * J == G
            assert s % I == 0 and t % J == 0
