"""The 2.5D advisory block in ``hsumma plan --json`` (satellite of the
job-stream PR): every advisory carries ``closed_form_only`` so JSON
consumers can tell a refined estimate from the tiling fallback."""

import json

from repro.cli import main
from repro.planner import Plan, PlanQuery, PlanService


def _plan_json(capsys, *extra):
    code = main(["plan", "--n", "2048", "-p", "64", "--refine", "none",
                 "--json", *extra])
    assert code == 0
    return json.loads(capsys.readouterr().out)


def test_plan_json_advisory_carries_closed_form_flag(capsys):
    payload = _plan_json(capsys)
    adv = payload["advisory"]["25d"]
    assert adv["closed_form_only"] is False
    assert adv["replication"] in (2, 4)
    # A refined advisory reports both prices side by side.
    for key in ("predicted_time", "comm_time", "compute_time", "backend",
                "closed_form_time"):
        assert key in adv


def test_untileable_layer_grid_falls_back_to_closed_form():
    # p=64 enumerates a 2.5D layout on a 4x4 layer grid; n=2050 is not
    # divisible by 4, so the candidate cannot be refined and the
    # advisory degrades to the bare closed form, flagged as such.
    result = PlanService(refine="none").plan(PlanQuery(n=2050, p=64))
    adv = result.advisory["25d"]
    assert adv["closed_form_only"] is True
    assert "closed_form_time" in adv
    assert "predicted_time" not in adv


def test_advisory_round_trips_through_dict():
    result = PlanService(refine="none").plan(PlanQuery(n=2050, p=64))
    again = Plan.from_dict(result.to_dict())
    assert again.advisory == result.advisory
    assert again.advisory["25d"]["closed_form_only"] is True


def test_refined_advisory_flag_false_at_predictor_fidelity():
    # p=32 enumerates a 2.5D layout (c=2, q=4); at predictor fidelity
    # the advisory is refined and must say so.
    result = PlanService(refine="predictor").plan(PlanQuery(n=1024, p=32))
    adv = result.advisory["25d"]
    assert adv["closed_form_only"] is False
    assert adv["backend"] == "predictor"
