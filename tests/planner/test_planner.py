"""Tests for the plan service: queries, candidate space, plan shape."""


import pytest

from repro.errors import ConfigurationError
from repro.planner import (
    Plan,
    PlanQuery,
    PlanService,
    candidate_blocks,
    candidate_grids,
    candidate_memory_elements,
    candidate_replications,
    enumerate_candidates,
    plan,
)


class TestQueryResolution:
    def test_defaults(self):
        rq = PlanQuery(n=1024, p=16).resolve()
        assert rq.itemsize == 8
        assert rq.alpha > 0 and rq.beta > 0
        assert rq.gamma == 0.0
        assert rq.beta_element == rq.beta * 8

    def test_platform_fills_parameters(self):
        rq = PlanQuery(n=1024, p=16, platform="bluegene-p").resolve()
        assert rq.gamma > 0
        assert rq.bcast_default == "vandegeijn"

    def test_explicit_overrides_platform(self):
        rq = PlanQuery(n=1024, p=16, platform="bluegene-p",
                       alpha=7e-7).resolve()
        assert rq.alpha == 7e-7

    def test_dtype_sets_itemsize(self):
        assert PlanQuery(n=64, p=4, dtype="float32").resolve().itemsize == 4

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ConfigurationError):
            PlanQuery(n=64, p=4, dtype="int7").resolve()

    def test_rejects_unknown_platform(self):
        with pytest.raises(ConfigurationError):
            PlanQuery(n=64, p=4, platform="laptop").resolve()

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            PlanQuery(n=0, p=4).resolve()
        with pytest.raises(ConfigurationError):
            PlanQuery(n=64, p=0).resolve()

    def test_rejects_bad_fault_spec(self):
        with pytest.raises(ConfigurationError):
            PlanQuery(n=64, p=4, faults="explode(now=1)").resolve()

    def test_equivalent_queries_share_canonical_form(self):
        a = PlanQuery(n=1024, p=16).resolve()
        b = PlanQuery(n=1024, p=16, dtype="float64").resolve()
        assert a.canonical() == b.canonical()


class TestCandidateSpace:
    def test_grids_are_factor_pairs(self):
        for s, t in candidate_grids(64):
            assert s * t == 64 and s <= t

    def test_grids_prefer_square(self):
        assert candidate_grids(64)[0] == (8, 8)

    def test_prime_p_falls_back_to_1xp(self):
        assert candidate_grids(13) == [(1, 13)]

    def test_blocks_divide_both_tiles(self):
        for b in candidate_blocks(4096, 8, 16):
            assert (4096 // 8) % b == 0
            assert (4096 // 16) % b == 0

    def test_replications_match_25d_layout(self):
        # p = q^2 c with c | q.
        assert candidate_replications(16384) == [4, 16]
        assert candidate_replications(7) == []

    def test_space_covers_both_2d_families(self):
        rq = PlanQuery(n=2048, p=64).resolve()
        algos = {c.algorithm for c in enumerate_candidates(rq)}
        assert {"summa", "hsumma"} <= algos

    def test_faulty_space_is_binomial_only_and_2d(self):
        rq = PlanQuery(n=2048, p=64, faults="kill(rank=1,t=0.5)").resolve()
        cands = enumerate_candidates(rq)
        assert all(c.algorithm != "2.5d" for c in cands)
        assert all(c.bcast == "binomial" for c in cands)

    def test_memory_footprint_counts_tiles_and_buffers(self):
        rq = PlanQuery(n=2048, p=64).resolve()
        cand = next(c for c in enumerate_candidates(rq)
                    if c.algorithm == "summa")
        tiles = 3 * (2048 / cand.s) * (2048 / cand.t)
        assert candidate_memory_elements(rq, cand) > tiles


class TestPlanning:
    def test_plan_shape(self):
        result = plan(PlanQuery(n=2048, p=64))
        assert isinstance(result, Plan)
        assert result.algorithm in ("summa", "hsumma")
        assert result.predicted_time > 0
        assert result.predicted_time == pytest.approx(
            result.comm_time + result.compute_time
        )
        # Segmented-family winners are priced at macro fidelity (the
        # predictor refuses them); everything else by the predictor.
        if "segments" in result.params:
            assert result.backend == "macro"
        else:
            assert result.backend == "predictor"
        assert result.lower_bound_time > 0
        assert result.lower_bound_gap == pytest.approx(
            result.predicted_time / result.lower_bound_time
        )
        assert result.candidates > 0
        assert not result.from_cache

    def test_hsumma_plan_names_all_parameters(self):
        svc = PlanService()
        result = svc.plan(PlanQuery(n=16384, p=16384))
        if result.algorithm == "hsumma":
            for key in ("grid", "groups", "group_grid", "block",
                        "inner_block", "bcast", "outer_bcast"):
                assert key in result.params, key

    def test_memory_budget_excludes_fat_candidates(self):
        n, p = 4096, 256
        # Just above the three resident tiles: replication cannot fit.
        budget = 4.0 * (n * n / p) * 8
        result = plan(PlanQuery(n=n, p=p, memory_bytes=budget))
        assert result.algorithm in ("summa", "hsumma")
        assert "25d" not in result.advisory

    def test_impossible_budget_raises(self):
        with pytest.raises(ConfigurationError):
            plan(PlanQuery(n=4096, p=4, memory_bytes=1024))

    def test_advisory_reports_25d_when_enumerable(self):
        result = plan(PlanQuery(n=2048, p=64))
        assert result.advisory["25d"]["replication"] in (2, 4)

    def test_faulty_plan_carries_profile(self):
        result = plan(PlanQuery(n=2048, p=64, faults="kill(rank=1,t=0.5)"))
        assert result.params["fault_profile"] == "kill(rank=1,t=0.5)"
        assert result.params["bcast"] == "binomial"

    def test_serial_plan(self):
        result = plan(PlanQuery(n=64, p=1))
        assert result.predicted_time == 0.0  # gamma defaults to 0

    def test_refine_none_uses_closed_forms(self):
        result = PlanService(refine="none").plan(PlanQuery(n=2048, p=64))
        assert result.backend == "closed-form"
        assert result.predicted_time == pytest.approx(result.closed_form_time)

    def test_refine_macro(self):
        result = PlanService(refine="macro").plan(PlanQuery(n=1024, p=16))
        assert result.backend == "macro"

    def test_bad_refine_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanService(refine="crystal-ball")

    def test_bad_top_k_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanService(top_k=0)

    def test_summary_mentions_the_choice(self):
        result = plan(PlanQuery(n=2048, p=64))
        text = result.summary()
        assert result.algorithm in text
        assert "lower bound" in text

    def test_round_trip_through_dict(self):
        result = plan(PlanQuery(n=2048, p=64))
        again = Plan.from_dict(result.to_dict())
        assert again.predicted_time == result.predicted_time
        assert again.params == result.params
        assert again.advisory == result.advisory
