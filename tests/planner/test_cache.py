"""Tests for the plan cache: memo, disk round-trip, batched dedupe."""


import pytest

from repro.planner import PLAN_CACHE_SALT, PlanQuery, PlanService
from repro.planner.service import _PLAN_FN


class TestMemo:
    def test_repeat_query_hits_memo(self):
        svc = PlanService()
        q = PlanQuery(n=2048, p=64)
        first = svc.plan(q)
        second = svc.plan(q)
        assert not first.from_cache
        assert second.from_cache
        assert second.predicted_time == first.predicted_time
        assert svc.stats == {"memo_hits": 1, "disk_hits": 0,
                             "planned": 1, "deduped": 0}

    def test_memo_hit_is_the_same_object(self):
        """Hot-path speed rests on the memo returning a prebuilt Plan,
        not rebuilding one per hit."""
        svc = PlanService()
        q = PlanQuery(n=2048, p=64)
        svc.plan(q)
        assert svc.plan(q) is svc.plan(q)

    def test_different_queries_do_not_collide(self):
        svc = PlanService()
        a = svc.plan(PlanQuery(n=2048, p=64))
        b = svc.plan(PlanQuery(n=4096, p=64))
        assert not b.from_cache
        assert a.query != b.query

    def test_service_settings_partition_the_cache(self):
        """top_k/refine are part of the cache key: a plan computed
        under one setting must not serve another."""
        q = PlanQuery(n=2048, p=64)
        spec_a = PlanService(refine="predictor")._spec(q.resolve())
        spec_b = PlanService(refine="none")._spec(q.resolve())
        assert spec_a != spec_b


class TestDisk:
    def test_round_trip(self, tmp_path):
        q = PlanQuery(n=2048, p=64)
        first = PlanService(cache_dir=str(tmp_path)).plan(q)
        svc = PlanService(cache_dir=str(tmp_path))
        second = svc.plan(q)
        assert second.from_cache
        assert svc.stats["disk_hits"] == 1
        assert second.predicted_time == first.predicted_time
        assert second.params == first.params
        assert second.advisory == first.advisory

    def test_entries_carry_the_planner_salt(self, tmp_path):
        import json

        PlanService(cache_dir=str(tmp_path)).plan(PlanQuery(n=2048, p=64))
        entries = list(tmp_path.glob("*.json"))
        assert entries
        entry = json.loads(entries[0].read_text())
        assert entry["salt"] == PLAN_CACHE_SALT
        assert entry["fn"] == _PLAN_FN

    def test_disk_hit_populates_memo(self, tmp_path):
        q = PlanQuery(n=2048, p=64)
        PlanService(cache_dir=str(tmp_path)).plan(q)
        svc = PlanService(cache_dir=str(tmp_path))
        svc.plan(q)
        svc.plan(q)
        assert svc.stats["disk_hits"] == 1
        assert svc.stats["memo_hits"] == 1


class TestPlanMany:
    def test_dedupes_equivalent_queries(self):
        svc = PlanService()
        qs = [
            PlanQuery(n=2048, p=64),
            PlanQuery(n=2048, p=64, dtype="float64"),  # same resolved
            PlanQuery(n=4096, p=64),
        ]
        plans = svc.plan_many(qs)
        assert len(plans) == 3
        assert svc.stats["planned"] == 2
        assert svc.stats["deduped"] == 1
        assert plans[0].predicted_time == plans[1].predicted_time
        assert plans[1].from_cache

    def test_order_preserved(self):
        svc = PlanService()
        qs = [PlanQuery(n=4096, p=64), PlanQuery(n=2048, p=64)]
        plans = svc.plan_many(qs)
        assert plans[0].query["n"] == 4096
        assert plans[1].query["n"] == 2048

    def test_hot_path_is_much_faster_than_cold(self):
        """The acceptance contract: repeated queries are served from
        the plan cache far faster than the cold path (the benchmark
        gate pins >= 100x; here we assert a conservative 20x so the
        test stays robust on loaded CI machines)."""
        import time

        q = PlanQuery(n=4096, p=1024)
        svc = PlanService()
        t0 = time.perf_counter()
        svc.plan(q)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(50):
            svc.plan(q)
        hot = (time.perf_counter() - t0) / 50
        assert cold > 20 * hot
