"""Planner <-> simulator fidelity: the times a plan reports are the
simulator backends' own numbers, not a reimplementation.

* ``refine="predictor"`` plans carry the predictor's prediction
  *bit-identically* (rebuilding the config from the plan's params and
  calling the predictor reproduces predicted/comm/compute exactly) —
  except for segmented-family winners, which the predictor refuses by
  design and the service prices at macro fidelity instead; those must
  replay bit-identically through the macro step model.
* ``refine="macro"`` plans match the predictor's totals within the
  documented fidelity contract (totals bit-identical, communication
  within 1e-9 relative; see ``repro.simulator.predictor``).
"""


import math

import pytest

from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.costs import PIPELINED_BCASTS
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.planner import PlanQuery, PlanService
from repro.simulator.predictor import (
    Summa25dConfig,
    predict_hsumma,
    predict_summa,
    predict_summa25d,
)


def _rebuild_config(result, rq):
    n = rq.n
    params = result.params
    s, t = params["grid"]
    if result.algorithm == "summa":
        return SummaConfig(m=n, l=n, n=n, s=s, t=t,
                           block=params["block"], bcast=params["bcast"])
    if result.algorithm == "2.5d":
        return Summa25dConfig(m=n, l=n, n=n, q=s,
                              c=params["replication"])
    I, J = params["group_grid"]
    return HSummaConfig(
        m=n, l=n, n=n, s=s, t=t, I=I, J=J,
        outer_block=params["block"],
        inner_block=params["inner_block"],
        outer_bcast=params["outer_bcast"],
        inner_bcast=params["bcast"],
    )


_PREDICTORS = {"summa": predict_summa, "hsumma": predict_hsumma,
               "2.5d": predict_summa25d}


def _replay_with_predictor(result, rq):
    """Rebuild the chosen config from the plan and ask the predictor."""
    cfg = _rebuild_config(result, rq)
    predict = _PREDICTORS[result.algorithm]
    network = HomogeneousNetwork(rq.p, HockneyParams(rq.alpha, rq.beta))
    res = predict(cfg, network=network, gamma=rq.gamma,
                  a_itemsize=rq.itemsize, b_itemsize=rq.itemsize)
    return res.stats[0]


def _replay_with_macro(result, rq):
    """Rebuild the chosen config and step the macro engine (the only
    backend that prices segmented-family plans)."""
    from repro.experiments.stepmodel import (
        AnalyticCoster,
        hsumma_step_model,
        summa_step_model,
    )

    cfg = _rebuild_config(result, rq)
    hock = HockneyParams(rq.alpha, rq.beta)
    seg = result.params.get("segments")
    if result.algorithm == "summa":
        return summa_step_model(
            cfg, AnalyticCoster(hock, result.params["bcast"], segments=seg),
            rq.gamma)
    return hsumma_step_model(
        cfg, AnalyticCoster(hock, result.params["bcast"], segments=seg),
        rq.gamma,
        outer_coster=AnalyticCoster(hock, result.params["outer_bcast"],
                                    segments=seg),
    )


QUERIES = [
    PlanQuery(n=2048, p=64),
    PlanQuery(n=2048, p=64, platform="grid5000-graphene"),
    PlanQuery(n=4096, p=256, platform="bluegene-p"),
    PlanQuery(n=4096, p=1024),
]


class TestPredictorFidelity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_plan_times_are_the_backends_bit_for_bit(self, query):
        rq = query.resolve()
        result = PlanService().plan(rq)
        if result.backend == "macro":
            # A segmented-family winner: the predictor refuses these,
            # so the reported numbers must be the macro engine's own.
            assert result.params["bcast"] in PIPELINED_BCASTS
            rep = _replay_with_macro(result, rq)
            assert result.predicted_time == rep.total_time
            assert result.comm_time == rep.comm_time
            assert result.compute_time == rep.compute_time
        else:
            assert result.backend == "predictor"
            st = _replay_with_predictor(result, rq)
            assert result.predicted_time == st.clock
            assert result.comm_time == st.comm_time
            assert result.compute_time == st.compute_time

    def test_25d_eligible_query_reports_predictor_fidelity(self):
        """A 2.5D-eligible query prices the replication family at
        predictor fidelity (not the old closed-form advisory), and the
        reported times replay bit-identically through the 2.5D
        predictor chain."""
        rq = PlanQuery(n=4096, p=32).resolve()
        result = PlanService().plan(rq)
        adv = result.advisory["25d"]
        assert adv["backend"] == "predictor"
        side = math.isqrt(rq.p // adv["replication"])
        cfg = Summa25dConfig(m=rq.n, l=rq.n, n=rq.n, q=side,
                             c=adv["replication"])
        network = HomogeneousNetwork(rq.p, HockneyParams(rq.alpha, rq.beta))
        st = predict_summa25d(cfg, network=network, gamma=rq.gamma,
                              a_itemsize=rq.itemsize,
                              b_itemsize=rq.itemsize).stats[0]
        assert adv["predicted_time"] == st.clock
        assert adv["comm_time"] == st.comm_time
        assert adv["compute_time"] == st.compute_time
        # And if the 2.5D family wins outright, the plan itself carries
        # those predictor numbers.
        if result.algorithm == "2.5d":
            assert result.backend == "predictor"
            assert result.predicted_time == st.clock

    def test_faulty_plan_times_are_the_predictors_bit_for_bit(self):
        """Fault-tolerant plans never pick the segmented family, so the
        classic predictor bit-identity contract stays pinned here."""
        rq = PlanQuery(n=2048, p=64, faults="kill(rank=1,t=0.5)").resolve()
        result = PlanService().plan(rq)
        assert result.backend == "predictor"
        st = _replay_with_predictor(result, rq)
        assert result.predicted_time == st.clock
        assert result.comm_time == st.comm_time
        assert result.compute_time == st.compute_time


class TestMacroFidelity:
    @pytest.mark.parametrize("query", QUERIES[:2])
    def test_macro_plan_matches_replay_contract(self, query):
        """Re-pricing the macro plan's config must agree per the
        documented fidelity contract.  For predictor-refinable winners
        that means the predictor's totals (bit-identical, communication
        within 1e-9 relative); segmented-family winners replay through
        the macro engine bit-identically."""
        rq = query.resolve()
        result = PlanService(refine="macro").plan(rq)
        if result.algorithm == "2.5d":
            # No 2.5D step model exists; refine="macro" routes the
            # family through its predictor chain (which replays the
            # macro engine's floats bit-identically anyway).
            assert result.backend == "predictor"
            st = _replay_with_predictor(result, rq)
            assert result.predicted_time == st.clock
            assert result.comm_time == st.comm_time
            return
        assert result.backend == "macro"
        if result.params.get("bcast") in PIPELINED_BCASTS:
            rep = _replay_with_macro(result, rq)
            assert result.predicted_time == rep.total_time
            assert result.comm_time == rep.comm_time
        else:
            st = _replay_with_predictor(result, rq)
            assert result.predicted_time == st.clock
            assert result.compute_time == st.compute_time
            assert result.comm_time == pytest.approx(st.comm_time, rel=1e-9)

    def test_macro_and_predictor_choose_comparable_plans(self):
        """Backends of identical fidelity must produce plans with
        identical predicted times (they price the same candidates, and
        segmented-family candidates route to macro under both)."""
        q = PlanQuery(n=2048, p=64)
        a = PlanService(refine="predictor").plan(q)
        b = PlanService(refine="macro").plan(q)
        assert a.predicted_time == b.predicted_time
        assert a.algorithm == b.algorithm
