"""Planner <-> simulator fidelity: the times a plan reports are the
simulator backends' own numbers, not a reimplementation.

* ``refine="predictor"`` plans carry the predictor's prediction
  *bit-identically* (rebuilding the config from the plan's params and
  calling the predictor reproduces predicted/comm/compute exactly).
* ``refine="macro"`` plans match the predictor's totals within the
  documented fidelity contract (totals bit-identical, communication
  within 1e-9 relative; see ``repro.simulator.predictor``).
"""


import pytest

from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.planner import PlanQuery, PlanService
from repro.simulator.predictor import predict_hsumma, predict_summa


def _replay_with_predictor(result, rq):
    """Rebuild the chosen config from the plan and ask the predictor."""
    n = rq.n
    params = result.params
    s, t = params["grid"]
    if result.algorithm == "summa":
        cfg = SummaConfig(m=n, l=n, n=n, s=s, t=t,
                          block=params["block"], bcast=params["bcast"])
        predict = predict_summa
    else:
        I, J = params["group_grid"]
        cfg = HSummaConfig(
            m=n, l=n, n=n, s=s, t=t, I=I, J=J,
            outer_block=params["block"],
            inner_block=params["inner_block"],
            outer_bcast=params["outer_bcast"],
            inner_bcast=params["bcast"],
        )
        predict = predict_hsumma
    network = HomogeneousNetwork(rq.p, HockneyParams(rq.alpha, rq.beta))
    res = predict(cfg, network=network, gamma=rq.gamma,
                  a_itemsize=rq.itemsize, b_itemsize=rq.itemsize)
    return res.stats[0]


QUERIES = [
    PlanQuery(n=2048, p=64),
    PlanQuery(n=2048, p=64, platform="grid5000-graphene"),
    PlanQuery(n=4096, p=256, platform="bluegene-p"),
    PlanQuery(n=4096, p=1024),
]


class TestPredictorFidelity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_plan_times_are_the_predictors_bit_for_bit(self, query):
        rq = query.resolve()
        result = PlanService().plan(rq)
        st = _replay_with_predictor(result, rq)
        assert result.predicted_time == st.clock
        assert result.comm_time == st.comm_time
        assert result.compute_time == st.compute_time


class TestMacroFidelity:
    @pytest.mark.parametrize("query", QUERIES[:2])
    def test_macro_plan_matches_predictor_contract(self, query):
        """Re-pricing the macro plan's config with the predictor must
        agree per the predictor's documented contract: totals and
        compute bit-identical, communication within 1e-9 relative."""
        rq = query.resolve()
        result = PlanService(refine="macro").plan(rq)
        assert result.backend == "macro"
        st = _replay_with_predictor(result, rq)
        assert result.predicted_time == st.clock
        assert result.compute_time == st.compute_time
        assert result.comm_time == pytest.approx(st.comm_time, rel=1e-9)

    def test_macro_and_predictor_choose_comparable_plans(self):
        """Backends of identical fidelity must produce plans with
        identical predicted times (they price the same candidates)."""
        q = PlanQuery(n=2048, p=64)
        a = PlanService(refine="predictor").plan(q)
        b = PlanService(refine="macro").plan(q)
        assert a.predicted_time == b.predicted_time
        assert a.algorithm == b.algorithm
