"""Seeded-defect tests: every mutated rank program must be flagged
with the right check id.

Each test takes a correct communication pattern, introduces one of the
classic SPMD bugs, and asserts the verifier (a) notices and (b) names
the defect class correctly — the property the verifier exists for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CollectiveMismatchError,
    DeadlockError,
    SimulationError,
    VerificationError,
)
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.requests import (
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    SendRequest,
)
from repro.simulator.runtime import run_spmd
from repro.verify import VerifyOptions, run_verified

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)

#: Structural checks only — the mutants here are about matching, not
#: numerics, and skipping the rerun keeps the failure paths isolated.
NO_SCHED = VerifyOptions(schedules=0)


def _net(n: int) -> HomogeneousNetwork:
    return HomogeneousNetwork(n, PARAMS)


def _run_raw(programs_factory, nranks: int, verify=NO_SCHED):
    return run_verified(programs_factory, verify=verify,
                        backend=None, network=_net(nranks))


class TestDroppedRecv:
    def test_unmatched_send_and_deadlock(self):
        """Mutant: the receiver forgets one of two expected receives."""

        def make():
            def sender():
                yield SendRequest(1, 0, b"a" * 64)
                yield SendRequest(1, 0, b"b" * 64)  # never received

            def receiver():
                yield RecvRequest(0, 0)
                # dropped: the second RecvRequest

            return [sender(), receiver()]

        with pytest.raises(DeadlockError) as exc_info:
            _run_raw(make, 2)
        verdict = exc_info.value.verdict
        assert verdict is not None and not verdict.ok
        assert verdict.by_check("unmatched-send")
        [finding] = verdict.by_check("deadlock")
        assert 0 in finding.ranks

    def test_dropped_nonblocking_recv_is_leak_warning(self):
        """A never-waited irecv with no matching send is a leak, not an
        error — the simulation still completed."""

        def make():
            def lonely():
                yield IRecvRequest(1, 0)
                return "done"

            def idle():
                return "idle"
                yield  # pragma: no cover

            return [lonely(), idle()]

        sim = _run_raw(make, 2)
        assert sim.verdict.ok
        assert sim.verdict.by_check("leaked-recv")


class TestTransposedSendOrder:
    def test_swapped_tags_deadlock(self):
        """Mutant: sender emits tags 1 then 2; receiver wants 2 then 1.
        Rendezvous blocks both ranks — the diagnoser must name the
        cycle."""

        def make():
            def sender():
                yield SendRequest(1, 1, b"x" * 32)
                yield SendRequest(1, 2, b"y" * 32)

            def receiver():
                yield RecvRequest(0, 2)
                yield RecvRequest(0, 1)

            return [sender(), receiver()]

        with pytest.raises(DeadlockError) as exc_info:
            _run_raw(make, 2)
        verdict = exc_info.value.verdict
        [finding] = verdict.by_check("deadlock")
        assert finding.severity == "error"
        assert "cycle" in finding.message
        assert set(finding.ranks) == {0, 1}


class TestWrongBcastRoot:
    def test_collective_root_mismatch(self):
        """Mutant: one rank broadcasts from root 1 while the rest use
        root 0."""

        def program(ctx):
            def gen():
                root = 1 if ctx.world.rank == 2 else 0
                payload = 1.0 if ctx.world.rank == root else None
                out = yield from ctx.world.bcast(payload, root=root)
                return out
            return gen()

        with pytest.raises(CollectiveMismatchError) as exc_info:
            run_spmd(program, 4, verify=NO_SCHED)
        exc = exc_info.value
        assert exc.check == "collective-root-mismatch"
        verdict = exc.verdict
        assert verdict is not None and not verdict.ok
        assert verdict.by_check("collective-root-mismatch")


class TestSkippedCollective:
    def test_missing_participant_deadlocks_with_names(self):
        """Mutant: rank 3 skips the allreduce entirely and exits."""

        def program(ctx):
            def gen():
                if ctx.world.rank == 3:
                    return 0.0
                out = yield from ctx.world.allreduce(float(ctx.world.rank))
                return out
            return gen()

        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(program, 4, verify=NO_SCHED)
        verdict = exc_info.value.verdict
        [finding] = verdict.by_check("deadlock")
        # The finding must name the ranks parked in the collective.
        assert {0, 1, 2} <= set(finding.ranks)

    def test_wrong_op_is_op_mismatch(self):
        """Mutant: one rank calls reduce where the others allreduce."""

        def program(ctx):
            def gen():
                if ctx.world.rank == 1:
                    out = yield from ctx.world.reduce(1.0, root=0)
                else:
                    out = yield from ctx.world.allreduce(1.0)
                return out
            return gen()

        with pytest.raises(CollectiveMismatchError) as exc_info:
            run_spmd(program, 4, verify=NO_SCHED)
        assert exc_info.value.check == "collective-op-mismatch"
        assert exc_info.value.verdict.by_check("collective-op-mismatch")


class TestSelfSend:
    def test_blocking_self_send_flagged(self):
        """Mutant: rank 0 blocking-sends to itself — rendezvous can
        never complete."""

        def make():
            def bad():
                yield SendRequest(0, 0, b"oops")

            def fine():
                return None
                yield  # pragma: no cover

            return [bad(), fine()]

        with pytest.raises(SimulationError) as exc_info:
            _run_raw(make, 2)
        verdict = exc_info.value.verdict
        assert verdict is not None and not verdict.ok
        [finding] = verdict.by_check("self-send")
        assert finding.ranks == (0,)


class TestPayloadMismatch:
    def test_allreduce_nbytes_mismatch(self):
        """Mutant: rank 0 contributes a (1,) vector to an allreduce the
        others feed (8,) vectors.  numpy broadcasting lets the run
        finish — only the verifier sees the wire-size disagreement."""

        def program(ctx):
            def gen():
                width = 1 if ctx.world.rank == 0 else 8
                out = yield from ctx.world.allreduce(np.ones(width))
                return out
            return gen()

        sim = run_spmd(program, 4, verify=NO_SCHED)
        assert not sim.verdict.ok
        [finding] = sim.verdict.by_check("collective-payload-mismatch")
        assert finding.severity == "error"

    def test_strict_mode_raises(self):
        def program(ctx):
            def gen():
                width = 1 if ctx.world.rank == 0 else 8
                out = yield from ctx.world.allreduce(np.ones(width))
                return out
            return gen()

        with pytest.raises(VerificationError) as exc_info:
            run_spmd(program, 4,
                     verify=VerifyOptions(schedules=0, strict=True))
        assert not exc_info.value.verdict.ok


class TestLeakedSend:
    def test_unwaited_isend_is_warning_only(self):
        """An isend that is matched but never waited on is sloppy, not
        wrong — warning severity, verdict stays ok (the ft_binomial
        backup-send idiom depends on this)."""

        def make():
            def sender():
                yield ISendRequest(1, 0, b"z" * 16)
                return "sent"

            def receiver():
                got = yield RecvRequest(0, 0)
                return got

            return [sender(), receiver()]

        sim = _run_raw(make, 2)
        assert sim.verdict.ok
        assert sim.verdict.by_check("unwaited-handle")
