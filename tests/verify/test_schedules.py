"""Determinism harness: jittered schedules, nondeterminism detection,
and the verify-off bit-identity guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.faults.schedule import unit_hash
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator.backends import resolve_backend
from repro.simulator.requests import RECV_TIMEOUT, RecvRequest, SendRequest
from repro.simulator.runtime import run_spmd
from repro.verify import (
    JitteredNetwork,
    VerifyOptions,
    bit_identical,
    run_verified,
)

PARAMS = HockneyParams(alpha=1e-3, beta=1e-9)


class TestJitteredNetwork:
    def test_transfer_times_perturbed_but_deterministic(self):
        base = HomogeneousNetwork(4, PARAMS)
        jit = JitteredNetwork(base, seed=3, amplitude=0.1)
        t0 = base.transfer_time(0, 1, 100)
        t1 = jit.transfer_time(0, 1, 100)
        assert t0 <= t1 <= t0 * 1.1
        # Same (seed, src, dst, nbytes) -> same perturbation.
        assert jit.transfer_time(0, 1, 100) == t1
        # A different link perturbs differently (with overwhelming
        # probability for any fixed seed; this seed is pinned).
        assert jit.transfer_time(1, 2, 100) != t1

    def test_self_transfers_unperturbed(self):
        base = HomogeneousNetwork(4, PARAMS)
        jit = JitteredNetwork(base, seed=3, amplitude=0.1)
        assert jit.transfer_time(2, 2, 64) == base.transfer_time(2, 2, 64)

    def test_nranks_and_links_delegate(self):
        base = HomogeneousNetwork(4, PARAMS)
        jit = JitteredNetwork(base, seed=0)
        assert jit.nranks == 4
        assert jit.links(0, 1) == base.links(0, 1)


class TestBitIdentical:
    def test_numpy_and_scalars(self):
        a = np.arange(4.0)
        assert bit_identical([a, 1.0, "x"], [a.copy(), 1.0, "x"])
        assert not bit_identical([a], [a + 1e-16])
        assert not bit_identical(1.0, np.float64(1.0).astype(np.float32))

    def test_nan_equals_nan(self):
        assert bit_identical(float("nan"), float("nan"))

    def test_phantoms(self):
        assert bit_identical(PhantomArray((2, 3)), PhantomArray((2, 3)))
        assert not bit_identical(PhantomArray((2, 3)), PhantomArray((3, 2)))


class TestScheduleHarness:
    def test_timing_dependent_result_flagged(self):
        """A timed receive racing a message whose *post* time depends
        on an earlier transfer flips under wire-time jitter — the
        harness must report nondeterminism."""
        nbytes = 64
        # Rank 0 first sends to rank 2 (both post at t=0, so the send
        # completes at the wire time of the 0->2 edge), then sends to
        # rank 1, whose timed receive expires between the base and the
        # jittered completion.  Schedule 0 runs under seed+1 = 1.
        base = PARAMS.transfer_time(nbytes)
        factor = 1.0 + 0.05 * unit_hash(1, 0, 2, nbytes)
        assert factor > 1.0
        timeout = base * (1.0 + (factor - 1.0) / 2.0)

        def make():
            def sender():
                yield SendRequest(2, 0, b"w" * nbytes)
                yield SendRequest(1, 0, b"r" * nbytes)

            def racer():
                got = yield RecvRequest(0, 0, timeout=timeout)
                return 0.0 if got is RECV_TIMEOUT else 1.0

            def sink():
                yield RecvRequest(0, 0)

            return [sender(), racer(), sink()]

        # Base run: the second send posts just in time.  Jittered run:
        # the receive expires first, so the rerun either deadlocks on
        # the now-unmatched send or returns a different value; the
        # harness flags it either way.
        sim = run_verified(
            make, verify=VerifyOptions(schedules=1, seed=0),
            backend=None, network=HomogeneousNetwork(3, PARAMS),
        )
        assert not sim.verdict.ok
        assert sim.verdict.by_check("nondeterminism")

    def test_deterministic_program_passes_many_schedules(self):
        def program(ctx):
            def gen():
                out = yield from ctx.world.allreduce(float(ctx.world.rank))
                return out
            return gen()

        sim = run_spmd(program, 4, verify=VerifyOptions(schedules=4))
        assert sim.verdict.ok
        assert not sim.verdict.meta.get("schedules_skipped")

    def test_prebuilt_engine_skips_schedules(self):
        engine = resolve_backend(None, HomogeneousNetwork(2, PARAMS))

        def program(ctx):
            def gen():
                out = yield from ctx.world.bcast(
                    1.0 if ctx.world.rank == 0 else None, root=0)
                return out
            return gen()

        sim = run_spmd(program, 2, backend=engine,
                       verify=VerifyOptions(schedules=2))
        assert sim.verdict.ok
        assert sim.verdict.meta.get("schedules_skipped")


class TestVerifyOffBitIdentity:
    def test_run_verified_off_equals_direct_run(self):
        """verify=None must leave the execution path untouched: same
        return values, same timings, same trace as calling the backend
        directly."""

        def program(ctx):
            def gen():
                out = yield from ctx.world.allreduce(
                    np.full(4, 1.0 + ctx.world.rank))
                return out
            return gen()

        def direct():
            from repro.mpi.comm import make_contexts

            programs = [program(ctx) for ctx in make_contexts(4)]
            return resolve_backend(
                None, HomogeneousNetwork(4, PARAMS), collect_trace=True,
            ).run(programs)

        ref = direct()
        sim = run_spmd(program, 4, params=PARAMS, collect_trace=True,
                       verify=None)
        assert sim.verdict is None
        assert bit_identical(sim.return_values, ref.return_values)
        assert sim.total_time == ref.total_time
        assert sim.trace == ref.trace

    def test_verify_on_does_not_change_timings(self):
        """The recorder observes without costing virtual time: enabling
        verification must not move the clock or the results."""

        def program(ctx):
            def gen():
                out = yield from ctx.world.allreduce(float(ctx.world.rank))
                return out
            return gen()

        off = run_spmd(program, 4, params=PARAMS, verify=None)
        on = run_spmd(program, 4, params=PARAMS,
                      verify=VerifyOptions(schedules=0))
        assert bit_identical(off.return_values, on.return_values)
        assert off.total_time == on.total_time
