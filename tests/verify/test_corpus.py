"""The shipped-algorithm corpus must verify clean, and the verdict /
report machinery must round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.verify import Finding, Verdict, VerifyOptions
from repro.verify.corpus import build_corpus, run_corpus

#: One determinism schedule keeps the full-corpus test affordable while
#: still exercising the rerun path for every algorithm.
FAST = VerifyOptions(schedules=1)

CASES = [case.name for case in build_corpus()]


class TestCorpus:
    @pytest.mark.parametrize("name", CASES)
    def test_case_is_clean(self, name):
        [(case, verdict)] = run_corpus([name], verify=FAST)
        assert verdict is not None, f"{name}: runner dropped the verdict"
        assert verdict.ok, f"{name}:\n{verdict.to_text()}"
        assert verdict.meta["outcome"] == "clean"
        assert verdict.meta["observed_ops"] > 0

    def test_unknown_case_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown corpus"):
            run_corpus(["does-not-exist"], verify=FAST)

    def test_corpus_names_unique(self):
        assert len(CASES) == len(set(CASES))


class TestVerdictReports:
    def _sample(self) -> Verdict:
        return Verdict(
            findings=[
                Finding("deadlock", "error", "blocking cycle 0 -> 1 -> 0",
                        ranks=(0, 1), detail={"cycle": [0, 1]}),
                Finding("leaked-send", "warning", "1 isend never received",
                        ranks=(2,)),
            ],
            nranks=4,
            checks=("deadlock", "leaked-send"),
            meta={"outcome": "error"},
        )

    def test_text_report(self):
        text = self._sample().to_text()
        assert "FAIL" in text
        assert "[error] deadlock" in text
        assert "[warning] leaked-send" in text

    def test_json_roundtrip(self):
        verdict = self._sample()
        payload = json.loads(verdict.to_json())
        assert payload["ok"] is False
        assert payload["nranks"] == 4
        checks = {f["check"] for f in payload["findings"]}
        assert checks == {"deadlock", "leaked-send"}

    def test_ok_semantics(self):
        warnings_only = Verdict(
            findings=[Finding("leaked-send", "warning", "m")],
            nranks=2, checks=("leaked-send",), meta={},
        )
        assert warnings_only.ok
        assert not self._sample().ok
