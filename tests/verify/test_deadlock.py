"""Deadlock-diagnoser and timed-receive regressions.

The structured :class:`~repro.errors.DeadlockError` plus the verifier's
wait-for graph must replace the old string-only quiescence report: the
blocking cycle gets named rank by rank, orphan waits point at the
likely dropped send, and timed receives escalate without tripping any
error-severity check.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError
from repro.faults.schedule import RetryPolicy
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.requests import (
    ComputeRequest,
    RecvRequest,
    SendRequest,
    SendRecvRequest,
)
from repro.simulator.runtime import run_spmd
from repro.verify import VerifyOptions, run_verified

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)
NO_SCHED = VerifyOptions(schedules=0)


def _run_raw(make, nranks, verify=NO_SCHED):
    return run_verified(make, verify=verify, backend=None,
                        network=HomogeneousNetwork(nranks, PARAMS))


class TestStructuredDeadlockError:
    def test_blocked_map_without_verifier(self):
        """The engine's DeadlockError names each blocked rank's pending
        operation even when no verifier is installed."""

        def make():
            def a():
                yield RecvRequest(1, 0)

            def b():
                yield RecvRequest(0, 0)

            return [a(), b()]

        with pytest.raises(DeadlockError) as exc_info:
            _run_raw(make, 2, verify=None)
        blocked = exc_info.value.blocked
        assert set(blocked) == {0, 1}
        for rank in (0, 1):
            assert "recv" in blocked[rank]["kind"]


class TestCycleDiagnosis:
    def test_two_cycle(self):
        def make():
            def a():
                yield RecvRequest(1, 0)

            def b():
                yield RecvRequest(0, 0)

            return [a(), b()]

        with pytest.raises(DeadlockError) as exc_info:
            _run_raw(make, 2)
        [finding] = exc_info.value.verdict.by_check("deadlock")
        assert "cycle" in finding.message
        assert finding.detail["cycle"] == [0, 1]

    def test_three_cycle_via_sendrecv_misroute(self):
        """Three ranks each blocking-send clockwise while receiving
        clockwise too — nobody's partner ever posts the matching op."""

        def make():
            def ring(rank):
                def gen():
                    nxt = (rank + 1) % 3
                    yield SendRequest(nxt, 0, b"x" * 8)
                    yield RecvRequest(nxt, 0)
                return gen()

            return [ring(r) for r in range(3)]

        with pytest.raises(DeadlockError) as exc_info:
            _run_raw(make, 3)
        [finding] = exc_info.value.verdict.by_check("deadlock")
        assert len(finding.detail["cycle"]) == 3

    def test_fused_sendrecv_cycle(self):
        """Two ranks sendrecv with mismatched tags: the fused op can
        never complete on either side."""

        def make():
            def a():
                yield SendRecvRequest(1, 1, b"x" * 8, 1, 2)

            def b():
                yield SendRecvRequest(0, 1, b"y" * 8, 0, 2)

            return [a(), b()]

        with pytest.raises(DeadlockError) as exc_info:
            _run_raw(make, 2)
        verdict = exc_info.value.verdict
        [finding] = verdict.by_check("deadlock")
        assert set(finding.ranks) == {0, 1}


class TestOrphanDiagnosis:
    def test_recv_from_finished_rank(self):
        """Rank 1 waits on a rank that exited without sending — no
        cycle, so the diagnoser must point at the dropped send."""

        def make():
            def quitter():
                return "bye"
                yield  # pragma: no cover

            def waiter():
                yield RecvRequest(0, 0)

            return [quitter(), waiter()]

        with pytest.raises(DeadlockError) as exc_info:
            _run_raw(make, 2)
        [finding] = exc_info.value.verdict.by_check("deadlock")
        assert "dropped or mis-addressed" in finding.message
        assert finding.detail["orphans"]


class TestTimedReceives:
    def test_expired_timeout_is_warning(self):
        """A timed receive that expires and is handled by the program
        is a recv-timeout warning, not an error."""

        def make():
            def patient():
                got = yield RecvRequest(1, 0, timeout=0.5)
                return got

            def silent():
                return None
                yield  # pragma: no cover

            return [patient(), silent()]

        sim = _run_raw(make, 2)
        assert sim.verdict.ok
        [finding] = sim.verdict.by_check("recv-timeout")
        assert finding.severity == "warning"

    def test_recv_retry_escalation_verifies_clean(self):
        """recv_retry: the first window expires, the retry succeeds.
        The verifier must not flag the expired attempt as unmatched."""

        def program(ctx):
            def gen():
                if ctx.world.rank == 0:
                    yield ComputeRequest(0.2)
                    yield from ctx.world.send(b"late" * 8, 1)
                    return "sent"
                policy = RetryPolicy(timeout=0.05, max_attempts=6)
                got = yield from ctx.world.recv_retry(0, policy=policy)
                return got
            return gen()

        sim = run_spmd(program, 2, verify=NO_SCHED)
        assert sim.return_values[1] == b"late" * 8
        assert sim.verdict.ok
        # The expired windows surface as informational timeout warnings.
        assert sim.verdict.by_check("recv-timeout")
