"""Unit tests for the communicator layer."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi.comm import CollectiveOptions, MpiContext
from repro.simulator import run_spmd


class TestMpiContext:
    def test_world_identity(self):
        ctx = MpiContext(2, 4)
        assert ctx.world.rank == 2
        assert ctx.world.size == 4

    def test_rank_out_of_range(self):
        with pytest.raises(CommunicatorError):
            MpiContext(4, 4)

    def test_negative_gamma_rejected(self):
        with pytest.raises(CommunicatorError):
            MpiContext(0, 1, gamma=-1)

    def test_compute_flops_uses_gamma(self):
        def prog(ctx):
            yield from ctx.compute_flops(1e6)

        res = run_spmd(prog, 1, gamma=1e-9)
        assert res.total_time == pytest.approx(1e-3)


class TestPointToPoint:
    def test_send_recv(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.world.send(np.arange(4.0), 1)
                return None
            data = yield from ctx.world.recv(0)
            return data

        res = run_spmd(prog, 2)
        assert np.allclose(res.return_values[1], np.arange(4.0))

    def test_sendrecv_ring(self):
        def prog(ctx):
            comm = ctx.world
            right = (ctx.rank + 1) % comm.size
            left = (ctx.rank - 1) % comm.size
            got = yield from comm.sendrecv(ctx.rank, right, left)
            return got

        res = run_spmd(prog, 5)
        assert res.return_values == [4, 0, 1, 2, 3]

    def test_isend_wait(self):
        def prog(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                h = yield from comm.isend("msg", 1)
                yield from comm.wait(h)
                return None
            h = yield from comm.irecv(0)
            return (yield from comm.wait(h))

        res = run_spmd(prog, 2)
        assert res.return_values[1] == "msg"

    def test_waitall_order(self):
        def prog(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send("a", 1, tag=1)
                yield from comm.send("b", 1, tag=2)
                return None
            h2 = yield from comm.irecv(0, tag=2)
            h1 = yield from comm.irecv(0, tag=1)
            vals = yield from comm.waitall([h1, h2])
            return vals

        res = run_spmd(prog, 2)
        assert res.return_values[1] == ["a", "b"]

    def test_invalid_dest_raises(self):
        def prog(ctx):
            yield from ctx.world.send("x", 5)

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 2)


class TestSplit:
    def test_split_by_parity(self):
        def prog(ctx):
            sub = ctx.world.split_by(lambda r: r % 2)
            total = yield from sub.allgather(ctx.rank)
            return total

        res = run_spmd(prog, 6)
        assert res.return_values[0] == [0, 2, 4]
        assert res.return_values[1] == [1, 3, 5]

    def test_split_key_reorders(self):
        def prog(ctx):
            sub = ctx.world.split_by(lambda r: 0, key_of=lambda r: -r)
            return sub.rank
            yield  # pragma: no cover

        res = run_spmd(prog, 4)
        # Reverse key order: world rank 3 becomes comm rank 0.
        assert res.return_values == [3, 2, 1, 0]

    def test_split_isolation(self):
        """Messages in sibling communicators must not cross-match."""

        def prog(ctx):
            sub = ctx.world.split_by(lambda r: r % 2)
            # Each color's rank 0 sends a distinctive value to rank 1.
            if sub.rank == 0:
                yield from sub.send(f"color{ctx.rank % 2}", 1)
                return None
            got = yield from sub.recv(0)
            return got

        res = run_spmd(prog, 4)
        assert res.return_values[2] == "color0"
        assert res.return_values[3] == "color1"

    def test_nested_split(self):
        def prog(ctx):
            half = ctx.world.split_by(lambda r: r // 2)
            pair = half.split_by(lambda r: 0)
            data = yield from pair.allgather(ctx.rank)
            return data

        res = run_spmd(prog, 4)
        assert res.return_values[0] == [0, 1]
        assert res.return_values[3] == [2, 3]

    def test_dup_isolated_from_parent(self):
        def prog(ctx):
            comm = ctx.world
            dup = comm.dup()
            if ctx.rank == 0:
                # Nonblocking sends: rendezvous would otherwise require
                # the receiver to post in the same order.
                h1 = yield from comm.isend("parent", 1, tag=0)
                h2 = yield from dup.isend("dup", 1, tag=0)
                yield from comm.waitall([h1, h2])
                return None
            if ctx.rank == 1:
                # Receive from the dup first: must get the dup message
                # even though the parent's was sent earlier.
                d = yield from dup.recv(0, tag=0)
                p = yield from comm.recv(0, tag=0)
                return (d, p)
            return None

        res = run_spmd(prog, 2)
        assert res.return_values[1] == ("dup", "parent")

    def test_subset(self):
        def prog(ctx):
            sub = ctx.world.subset([1, 3])
            if sub is None:
                return None
            vals = yield from sub.allgather(ctx.rank)
            return vals

        res = run_spmd(prog, 4)
        assert res.return_values[0] is None
        assert res.return_values[1] == [1, 3]
        assert res.return_values[3] == [1, 3]

    def test_world_rank_translation(self):
        def prog(ctx):
            sub = ctx.world.split_by(lambda r: r % 2)
            return [sub.world_rank(i) for i in range(sub.size)]
            yield  # pragma: no cover

        res = run_spmd(prog, 4)
        assert res.return_values[0] == [0, 2]
        assert res.return_values[1] == [1, 3]


class TestCollectiveOptions:
    def test_defaults(self):
        opts = CollectiveOptions()
        assert opts.bcast == "binomial"
        assert opts.allgather == "ring"

    def test_replace(self):
        opts = CollectiveOptions().replace(bcast="vandegeijn")
        assert opts.bcast == "vandegeijn"

    def test_options_flow_to_bcast(self):
        """Configured vdg broadcast must actually run vdg (check cost)."""
        from repro.collectives.cost import bcast_time
        from repro.network.model import HockneyParams

        params = HockneyParams(1e-4, 1e-9)

        def prog(ctx):
            data = np.zeros(1000) if ctx.rank == 0 else None
            yield from ctx.world.bcast(data, root=0)

        res_b = run_spmd(prog, 8, params=params)
        res_v = run_spmd(
            prog, 8, params=params, options=CollectiveOptions(bcast="vandegeijn")
        )
        assert res_b.total_time == pytest.approx(bcast_time("binomial", 8000, 8, params))
        assert res_v.total_time == pytest.approx(
            bcast_time("vandegeijn", 8000, 8, params)
        )
