"""Early collective-argument validation in the communicator layer.

Each collective call announces its signature (participants, op, root,
algorithm, segments) into a shared per-(communicator, sequence)
registry; the first rank whose announcement disagrees with an earlier
one fails immediately with a :class:`CollectiveMismatchError` carrying
the verification check id — instead of hanging or silently computing
garbage.
"""

from __future__ import annotations

import pytest

from repro.errors import CollectiveMismatchError
from repro.mpi.comm import CollectiveOptions
from repro.simulator.runtime import run_spmd


def _run(program, nranks=4, **kw):
    return run_spmd(program, nranks, **kw)


class TestEagerMismatchDetection:
    def test_root_mismatch(self):
        def program(ctx):
            def gen():
                root = 1 if ctx.world.rank == 3 else 0
                out = yield from ctx.world.bcast(
                    1.0 if ctx.world.rank == root else None, root=root)
                return out
            return gen()

        with pytest.raises(CollectiveMismatchError) as exc_info:
            _run(program)
        exc = exc_info.value
        assert exc.check == "collective-root-mismatch"
        assert exc.expected["root"] != exc.observed["root"]

    def test_op_mismatch(self):
        def program(ctx):
            def gen():
                if ctx.world.rank == 2:
                    out = yield from ctx.world.bcast(1.0, root=0)
                else:
                    out = yield from ctx.world.allreduce(1.0)
                return out
            return gen()

        with pytest.raises(CollectiveMismatchError) as exc_info:
            _run(program)
        assert exc_info.value.check == "collective-op-mismatch"

    def test_algorithm_mismatch(self):
        def program(ctx):
            def gen():
                algo = "binomial" if ctx.world.rank else "flat"
                out = yield from ctx.world.bcast(
                    1.0 if ctx.world.rank == 0 else None,
                    root=0, algorithm=algo)
                return out
            return gen()

        with pytest.raises(CollectiveMismatchError) as exc_info:
            _run(program)
        assert exc_info.value.check == "collective-arg-mismatch"

    def test_error_message_names_field_and_check(self):
        def program(ctx):
            def gen():
                root = ctx.world.rank % 2
                out = yield from ctx.world.bcast(
                    1.0 if ctx.world.rank == root else None, root=root)
                return out
            return gen()

        with pytest.raises(CollectiveMismatchError, match="root=") as exc_info:
            _run(program)
        assert "collective-root-mismatch" in str(exc_info.value)


class TestConsistentCallsPass:
    def test_mixed_collective_sequence(self):
        def program(ctx):
            def gen():
                a = yield from ctx.world.bcast(
                    2.0 if ctx.world.rank == 0 else None, root=0)
                b = yield from ctx.world.allreduce(a * ctx.world.rank)
                c = yield from ctx.world.reduce(b, root=1)
                return c
            return gen()

        sim = _run(program)
        assert sim.return_values[1] is not None

    def test_explicit_uniform_algorithm(self):
        def program(ctx):
            def gen():
                out = yield from ctx.world.bcast(
                    1.0 if ctx.world.rank == 0 else None,
                    root=0, algorithm="binomial")
                return out
            return gen()

        sim = _run(program, options=CollectiveOptions(bcast="binomial"))
        assert all(v == 1.0 for v in sim.return_values)

    def test_subcommunicators_validate_independently(self):
        """Two row communicators run their own sequences: same seq
        number, different cids — no false mismatch."""

        def program(ctx):
            def gen():
                row = ctx.world.split_by(lambda r: r // 2)
                out = yield from row.bcast(
                    float(ctx.world.rank) if row.rank == 0 else None, root=0)
                return out
            return gen()

        sim = _run(program, 4)
        assert sim.return_values == [0.0, 0.0, 2.0, 2.0]
