"""Unit tests for the Cartesian grid communicator."""

import pytest

from repro.errors import CommunicatorError
from repro.mpi.cart import CartComm
from repro.simulator import run_spmd


class TestCartComm:
    def test_coords_row_major(self):
        def prog(ctx):
            grid = CartComm(ctx.world, 2, 3)
            return (grid.row, grid.col)
            yield  # pragma: no cover

        res = run_spmd(prog, 6)
        assert res.return_values == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_size_mismatch(self):
        def prog(ctx):
            CartComm(ctx.world, 2, 2)
            return None
            yield  # pragma: no cover

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 6)

    def test_rank_at_wraps(self):
        def prog(ctx):
            grid = CartComm(ctx.world, 2, 3)
            return (grid.rank_at(-1, 0), grid.rank_at(0, 3), grid.rank_at(2, 4))
            yield  # pragma: no cover

        res = run_spmd(prog, 6)
        assert res.return_values[0] == (3, 0, 1)

    def test_coords_inverse_of_rank_at(self):
        def prog(ctx):
            grid = CartComm(ctx.world, 3, 4)
            out = []
            for i in range(3):
                for j in range(4):
                    out.append(grid.coords(grid.rank_at(i, j)) == (i, j))
            return all(out)
            yield  # pragma: no cover

        res = run_spmd(prog, 12)
        assert all(res.return_values)

    def test_row_and_col_comms(self):
        def prog(ctx):
            grid = CartComm(ctx.world, 2, 3)
            rows = yield from grid.row_comm.allgather(ctx.rank)
            cols = yield from grid.col_comm.allgather(ctx.rank)
            return (rows, cols)

        res = run_spmd(prog, 6)
        # Rank 4 is at (1, 1): row mates {3,4,5}, col mates {1,4}.
        rows, cols = res.return_values[4]
        assert rows == [3, 4, 5]
        assert cols == [1, 4]

    def test_row_comm_rank_is_col(self):
        def prog(ctx):
            grid = CartComm(ctx.world, 2, 3)
            return (grid.row_comm.rank == grid.col,
                    grid.col_comm.rank == grid.row)
            yield  # pragma: no cover

        res = run_spmd(prog, 6)
        assert all(a and b for a, b in res.return_values)

    def test_coords_bounds(self):
        def prog(ctx):
            grid = CartComm(ctx.world, 2, 2)
            try:
                grid.coords(4)
            except CommunicatorError:
                return "raised"
            return "no"
            yield  # pragma: no cover

        res = run_spmd(prog, 4)
        assert res.return_values[0] == "raised"
