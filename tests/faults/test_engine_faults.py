"""Engine-level fault injection: drops retransmit transparently,
degradation and slowdowns stretch virtual time by exact factors, timed
receives expire, and fail-stop deaths raise structured errors."""

import numpy as np
import pytest

from repro.errors import RankFailure, SimulationError
from repro.faults import (
    FaultSchedule,
    LinkDegradation,
    MessageDrop,
    RankDeath,
    RankSlowdown,
    RetryPolicy,
)
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator import run_spmd
from repro.simulator.requests import RECV_TIMEOUT, CounterRequest

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)

TAG = 7


def _ping(payload_factory):
    """Rank 0 sends one message to rank 1."""

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.world.send(payload_factory(), 1, tag=TAG)
            return None
        out = yield from ctx.world.recv(0, tag=TAG)
        return out

    return prog


def _chatter(rounds):
    """Rank 0 streams ``rounds`` messages to rank 1."""

    def prog(ctx):
        if ctx.rank == 0:
            for k in range(rounds):
                yield from ctx.world.send(np.full(64, float(k)), 1, tag=TAG)
            return None
        got = []
        for _ in range(rounds):
            got.append((yield from ctx.world.recv(0, tag=TAG)))
        return got

    return prog


class TestEmptySchedule:
    def test_empty_schedule_is_bit_identical_to_none(self):
        prog = _ping(lambda: np.arange(128.0))
        clean = run_spmd(prog, 2, params=PARAMS, collect_trace=True)
        empty = run_spmd(prog, 2, params=PARAMS, collect_trace=True,
                         faults=FaultSchedule())
        assert empty.total_time == clean.total_time
        assert empty.trace == clean.trace
        assert not empty.faulted

    def test_schedule_with_no_matching_faults_adds_no_delay(self):
        """Rules that never match leave timings bit-identical."""
        prog = _ping(lambda: np.arange(128.0))
        clean = run_spmd(prog, 2, params=PARAMS)
        faulty = run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(
            seed=1,
            faults=[MessageDrop(p=0.5, src=1, dst=0),       # wrong direction
                    LinkDegradation(beta_mult=8.0, t0=100.0, t1=200.0),
                    RankSlowdown(rank=0, factor=4.0, t0=100.0, t1=200.0)],
        ))
        assert faulty.total_time == clean.total_time
        assert not faulty.faulted
        assert faulty.total_fault_delay == 0.0


class TestDrops:
    def test_payload_survives_heavy_drops(self):
        prog = _chatter(16)
        clean = run_spmd(prog, 2, params=PARAMS)
        faulty = run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(
            seed=3, faults=[MessageDrop(p=0.6)]))
        assert faulty.total_retries > 0
        for a, b in zip(clean.return_values[1], faulty.return_values[1]):
            assert np.array_equal(a, b)

    def test_drops_cost_time(self):
        prog = _chatter(16)
        clean = run_spmd(prog, 2, params=PARAMS)
        faulty = run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(
            seed=3, faults=[MessageDrop(p=0.6)]))
        assert faulty.total_time > clean.total_time
        assert faulty.total_fault_delay > 0.0
        assert faulty.faulted

    def test_retries_attributed_to_sender(self):
        faulty = run_spmd(_chatter(16), 2, params=PARAMS, faults=FaultSchedule(
            seed=3, faults=[MessageDrop(p=0.6)]))
        assert faulty.stats[0].retries > 0
        assert faulty.stats[1].retries == 0

    def test_retransmit_cap_enforced(self):
        """p close to 1 with a tiny cap still terminates."""
        policy = RetryPolicy(max_retransmits=2)
        faulty = run_spmd(_chatter(8), 2, params=PARAMS, faults=FaultSchedule(
            seed=1, faults=[MessageDrop(p=0.99)], retry=policy))
        assert faulty.stats[0].retries <= 2 * 8 + 2  # cap per message
        assert faulty.return_values[1] is not None

    def test_backoff_charged_per_retransmit(self):
        """One guaranteed-ish drop: delay >= wasted wire + backoff."""
        policy = RetryPolicy(backoff=1e-3, backoff_multiplier=1.0,
                             max_backoff=1e-3)
        faulty = run_spmd(_chatter(16), 2, params=PARAMS, faults=FaultSchedule(
            seed=3, faults=[MessageDrop(p=0.6)], retry=policy))
        n = faulty.total_retries
        assert n > 0
        assert faulty.total_fault_delay >= n * 1e-3


class TestDegradation:
    def test_exact_degraded_wire_time(self):
        nelems = 1 << 15
        prog = _ping(lambda: np.zeros(nelems))
        net = HomogeneousNetwork(2, PARAMS)
        clean = run_spmd(prog, 2, network=net)
        faulty = run_spmd(prog, 2, network=net, faults=FaultSchedule(faults=[
            LinkDegradation(alpha_mult=3.0, beta_mult=2.0)]))
        alpha = net.transfer_time(0, 1, 0)
        wire = clean.total_time
        assert faulty.total_time == pytest.approx(
            3.0 * alpha + 2.0 * (wire - alpha))

    def test_only_matching_link_degraded(self):
        """A rule pinned to the reverse direction changes nothing."""
        prog = _ping(lambda: np.zeros(4096))
        clean = run_spmd(prog, 2, params=PARAMS)
        faulty = run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(faults=[
            LinkDegradation(beta_mult=16.0, src=1, dst=0)]))
        assert faulty.total_time == clean.total_time


class TestSlowdown:
    def test_compute_scaled_by_factor(self):
        def prog(ctx):
            yield from ctx.compute(0.01)
            return ctx.rank

        clean = run_spmd(prog, 2, params=PARAMS)
        faulty = run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(faults=[
            RankSlowdown(rank=1, factor=3.0)]))
        assert clean.total_time == pytest.approx(0.01)
        assert faulty.total_time == pytest.approx(0.03)
        assert faulty.stats[1].fault_delay == pytest.approx(0.02)
        assert faulty.stats[0].fault_delay == 0.0

    def test_window_expiry(self):
        def prog(ctx):
            yield from ctx.compute(0.01)  # starts at 0, inside window
            yield from ctx.compute(0.01)  # starts after t1, clean
            return None

        faulty = run_spmd(prog, 1, params=PARAMS, faults=FaultSchedule(faults=[
            RankSlowdown(rank=0, factor=2.0, t0=0.0, t1=0.015)]))
        assert faulty.total_time == pytest.approx(0.03)


class TestTimedRecv:
    def test_timeout_returns_sentinel(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(0.05)  # send arrives late
                yield from ctx.world.send(np.arange(8.0), 1, tag=TAG)
                return None
            first = yield from ctx.world.recv(0, tag=TAG, timeout=0.01)
            second = yield from ctx.world.recv(0, tag=TAG)  # drain
            return (first, second)

        res = run_spmd(prog, 2, params=PARAMS)
        first, second = res.return_values[1]
        assert first is RECV_TIMEOUT
        assert np.array_equal(second, np.arange(8.0))
        assert res.stats[1].timeouts == 1
        assert res.total_timeouts == 1

    def test_timely_message_does_not_time_out(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.world.send(np.arange(8.0), 1, tag=TAG)
                return None
            out = yield from ctx.world.recv(0, tag=TAG, timeout=10.0)
            return out

        res = run_spmd(prog, 2, params=PARAMS)
        assert np.array_equal(res.return_values[1], np.arange(8.0))
        assert res.total_timeouts == 0

    def test_timeout_advances_clock_to_deadline(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(1.0)
                yield from ctx.world.send(None, 1, tag=TAG, nbytes=8)
                return None
            got = yield from ctx.world.recv(0, tag=TAG, timeout=0.25)
            assert got is RECV_TIMEOUT
            yield from ctx.world.recv(0, tag=TAG)
            return None

        res = run_spmd(prog, 2, params=PARAMS)
        # Rank 1's first wait ended exactly at the 0.25s deadline.
        assert res.stats[1].comm_time >= 0.25

    def test_recv_retry_recovers_after_timeouts(self):
        policy = RetryPolicy(timeout=0.01, timeout_multiplier=2.0,
                             max_attempts=8)

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(0.02)  # one escalation's worth
                yield from ctx.world.send(np.arange(4.0), 1, tag=TAG)
                return None
            out = yield from ctx.world.recv_retry(0, tag=TAG, policy=policy)
            return out

        res = run_spmd(prog, 2, params=PARAMS)
        assert np.array_equal(res.return_values[1], np.arange(4.0))
        assert res.stats[1].timeouts >= 1
        assert res.stats[1].recoveries == 1


class TestCounterRequest:
    def test_counter_bumps_stats(self):
        def prog(ctx):
            yield CounterRequest("recoveries")
            yield CounterRequest("recoveries", 2)
            return None

        res = run_spmd(prog, 1, params=PARAMS)
        assert res.stats[0].recoveries == 3
        assert res.total_time == 0.0  # counters are free

    def test_unknown_counter_rejected(self):
        with pytest.raises(SimulationError):
            CounterRequest("bytes_sent")


class TestFailStop:
    def test_death_raises_structured_failure(self):
        def prog(ctx):
            yield from ctx.compute(1.0)
            return None

        with pytest.raises(RankFailure) as info:
            run_spmd(prog, 4, params=PARAMS, faults=FaultSchedule(faults=[
                RankDeath(rank=2, time=0.5)]))
        assert info.value.rank == 2
        assert info.value.time == 0.5
        assert "rank 2" in str(info.value)

    def test_death_after_finish_is_ignored(self):
        def prog(ctx):
            yield from ctx.compute(0.01)
            return "done"

        res = run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(faults=[
            RankDeath(rank=1, time=5.0)]))
        assert res.return_values == ["done", "done"]

    def test_death_outside_world_is_ignored(self):
        def prog(ctx):
            yield from ctx.compute(0.01)
            return None

        res = run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(faults=[
            RankDeath(rank=17, time=0.001)]))
        assert res.total_time == pytest.approx(0.01)

    def test_death_preempts_same_time_work(self):
        """A rank that would finish exactly at the death time still dies."""

        def prog(ctx):
            yield from ctx.compute(0.5)
            return None

        with pytest.raises(RankFailure):
            run_spmd(prog, 2, params=PARAMS, faults=FaultSchedule(faults=[
                RankDeath(rank=0, time=0.5)]))


class TestFaultSummary:
    def test_summary_reports_counters(self):
        faulty = run_spmd(_chatter(16), 2, params=PARAMS, faults=FaultSchedule(
            seed=3, faults=[MessageDrop(p=0.6)]))
        text = faulty.fault_summary()
        assert "retransmits" in text
        assert str(faulty.total_retries) in text
