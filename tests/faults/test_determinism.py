"""Determinism regression: the same seed and fault spec must reproduce
the exact event trace on a fresh engine, and changing the seed must
actually change something."""

import dataclasses

import numpy as np

from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.faults import parse_fault_spec
from repro.network.model import HockneyParams
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)

SPEC = ("drop(p=0.3); degrade(src=0, dst=1, beta=4);"
        " slow(rank=2, factor=3, t0=0, t1=0.01)")


def _chatter(ctx):
    """All-pairs chatter with interleaved compute: a timing-sensitive
    workload where any nondeterminism would reorder transfers."""
    size = ctx.world.size
    for k in range(4):
        yield from ctx.compute(1e-5 * ((ctx.rank + k) % 3))
        dst = (ctx.rank + 1 + k) % size
        src = (ctx.rank - 1 - k) % size
        out = yield from ctx.world.sendrecv(
            np.full(32, float(ctx.rank)), dst, src, sendtag=k, recvtag=k)
    return out


def _run(seed):
    faults = parse_fault_spec(SPEC, seed=seed)
    return run_spmd(_chatter, 6, params=PARAMS, collect_trace=True,
                    faults=faults)


class TestTraceReplay:
    def test_same_seed_same_trace(self):
        """Two fresh engines under the same schedule produce identical
        TransferRecord sequences — every field of every event."""
        first, second = _run(seed=11), _run(seed=11)
        assert len(first.trace) == len(second.trace)
        for a, b in zip(first.trace, second.trace):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert first.total_time == second.total_time
        assert first.total_retries == second.total_retries
        assert first.total_fault_delay == second.total_fault_delay
        for sa, sb in zip(first.stats, second.stats):
            assert dataclasses.asdict(sa) == dataclasses.asdict(sb)

    def test_different_seed_different_outcome(self):
        a, b = _run(seed=11), _run(seed=12)
        assert a.total_retries != b.total_retries or a.total_time != b.total_time

    def test_spec_reparse_is_equivalent(self):
        """Parsing the spec twice gives interchangeable schedules."""
        one = run_spmd(_chatter, 6, params=PARAMS,
                       faults=parse_fault_spec(SPEC, seed=7))
        two = run_spmd(_chatter, 6, params=PARAMS,
                       faults=parse_fault_spec(SPEC, seed=7))
        assert one.total_time == two.total_time


class TestAlgorithmReplay:
    def test_summa_replay(self):
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((24, 24)), rng.standard_normal((24, 24))
        runs = [run_summa(A, B, grid=(2, 2), block=6, params=PARAMS,
                          faults=parse_fault_spec("drop(p=0.4)", seed=21))
                for _ in range(2)]
        (c1, s1), (c2, s2) = runs
        assert np.array_equal(c1, c2)
        assert s1.total_time == s2.total_time
        assert s1.total_retries == s2.total_retries
        assert s1.total_retries > 0

    def test_hsumma_replay(self):
        rng = np.random.default_rng(1)
        A, B = rng.standard_normal((24, 24)), rng.standard_normal((24, 24))
        runs = [run_hsumma(A, B, grid=(2, 2), groups=2, outer_block=6,
                           params=PARAMS,
                           faults=parse_fault_spec(SPEC, seed=8))
                for _ in range(2)]
        (c1, s1), (c2, s2) = runs
        assert np.array_equal(c1, c2)
        assert s1.total_time == s2.total_time
        assert s1.total_retries == s2.total_retries
