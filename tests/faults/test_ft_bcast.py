"""The fault-tolerant broadcast: tree helpers, clean-path equivalence
with the plain binomial, escalation under stragglers, and the
recv_retry failure path."""

import numpy as np
import pytest

from repro.collectives import BROADCAST_ALGORITHMS
from repro.collectives.ft import ancestor_chain, subtree_backups
from repro.errors import FaultToleranceError
from repro.faults import FaultSchedule, RetryPolicy
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator import run_spmd

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestTreeHelpers:
    def test_registry_has_ft_binomial(self):
        assert "ft_binomial" in BROADCAST_ALGORITHMS

    def test_ancestor_chain_examples(self):
        assert ancestor_chain(0) == []
        assert ancestor_chain(1) == [0]
        assert ancestor_chain(5) == [1, 0]
        assert ancestor_chain(7) == [3, 1, 0]
        assert ancestor_chain(12) == [4, 0]

    def test_ancestor_chain_ends_at_root(self):
        for vr in range(1, 64):
            chain = ancestor_chain(vr)
            assert chain[-1] == 0
            assert all(a < vr for a in chain)
            assert len(chain) <= vr.bit_length()

    def test_subtree_examples(self):
        assert list(subtree_backups(2, 8)) == [(6, 0)]
        assert list(subtree_backups(1, 8)) == [(3, 0), (5, 0), (7, 1)]
        assert list(subtree_backups(7, 8)) == []

    def test_backups_cover_every_escalation_path(self):
        """(d, level) is served by ancestor ``a`` exactly when ``a`` is
        the level-th entry of d's ancestor chain — so every timed recv a
        descendant can post has a matching backup sender."""
        size = 16
        served = {(a, d, level)
                  for a in range(size)
                  for d, level in subtree_backups(a, size)}
        expected = {(anc, d, level)
                    for d in range(1, size)
                    for level, anc in enumerate(ancestor_chain(d))}
        assert served == expected

    def test_root_subtree_is_everyone(self):
        for size in (2, 5, 8, 13):
            assert [d for d, _ in subtree_backups(0, size)] == list(
                range(1, size))


def _bcast_prog(root, payload_factory, straggler=None, delay=0.0):
    def prog(ctx):
        if ctx.rank == straggler:
            yield from ctx.compute(delay)
        payload = payload_factory() if ctx.rank == root else None
        out = yield from ctx.world.bcast(payload, root=root,
                                         algorithm="ft_binomial")
        return out

    return prog


class TestCleanPath:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13, 16])
    def test_all_ranks_receive(self, size):
        res = run_spmd(_bcast_prog(0, lambda: np.arange(24.0)), size,
                       params=PARAMS)
        for value in res.return_values:
            assert np.array_equal(value, np.arange(24.0))
        assert res.total_recoveries == 0
        assert res.total_timeouts == 0

    @pytest.mark.parametrize("root", [0, 1, 3, 6])
    def test_nonzero_roots(self, root):
        res = run_spmd(_bcast_prog(root, lambda: np.full(10, float(root))), 7,
                       params=PARAMS)
        for value in res.return_values:
            assert np.array_equal(value, np.full(10, float(root)))

    def test_same_payloads_as_binomial(self):
        def ref_prog(ctx):
            payload = np.arange(32.0) if ctx.rank == 2 else None
            out = yield from ctx.world.bcast(payload, root=2,
                                             algorithm="binomial")
            return out

        ft = run_spmd(_bcast_prog(2, lambda: np.arange(32.0)), 12,
                      params=PARAMS)
        ref = run_spmd(ref_prog, 12, params=PARAMS)
        for a, b in zip(ft.return_values, ref.return_values):
            assert np.array_equal(a, b)

    def test_phantom_payload(self):
        res = run_spmd(_bcast_prog(0, lambda: PhantomArray((8, 8))), 6,
                       params=PARAMS)
        for value in res.return_values:
            assert isinstance(value, PhantomArray)
            assert value.shape == (8, 8)

    def test_consecutive_broadcasts_do_not_cross_match(self):
        """The per-communicator tag sequence keeps a second broadcast's
        messages apart from the first's unclaimed backups."""

        def prog(ctx):
            first = np.zeros(4) if ctx.rank == 0 else None
            first = yield from ctx.world.bcast(first, root=0,
                                               algorithm="ft_binomial")
            second = np.ones(4) if ctx.rank == 0 else None
            second = yield from ctx.world.bcast(second, root=0,
                                                algorithm="ft_binomial")
            return (first, second)

        res = run_spmd(prog, 8, params=PARAMS)
        for first, second in res.return_values:
            assert np.array_equal(first, np.zeros(4))
            assert np.array_equal(second, np.ones(4))


class TestEscalation:
    def test_straggler_parent_triggers_recovery(self):
        """Rank 1 (parent of relative rank 3) enters the broadcast late;
        its child times out and recovers from the grandparent (root)."""
        policy = RetryPolicy(timeout=0.01)
        faults = FaultSchedule(retry=policy)
        res = run_spmd(
            _bcast_prog(0, lambda: np.arange(16.0), straggler=1, delay=0.5),
            4, params=PARAMS, faults=faults,
        )
        for value in res.return_values:
            assert np.array_equal(value, np.arange(16.0))
        assert res.total_timeouts >= 1
        assert res.total_recoveries >= 1
        assert res.stats[3].recoveries == 1

    def test_recovered_run_still_bit_identical(self):
        policy = RetryPolicy(timeout=0.01)
        clean = run_spmd(_bcast_prog(0, lambda: np.arange(16.0)), 8,
                         params=PARAMS)
        faulty = run_spmd(
            _bcast_prog(0, lambda: np.arange(16.0), straggler=1, delay=0.5),
            8, params=PARAMS, faults=FaultSchedule(retry=policy),
        )
        for a, b in zip(clean.return_values, faulty.return_values):
            assert np.array_equal(a, b)

    def test_deep_escalation(self):
        """Relative rank 7's whole ancestor chain (3 and 1) straggles, so
        it must fall all the way back to the blocking root receive."""
        policy = RetryPolicy(timeout=0.01)

        def prog(ctx):
            if ctx.rank in (1, 3):
                yield from ctx.compute(1.0)
            payload = np.arange(8.0) if ctx.rank == 0 else None
            out = yield from ctx.world.bcast(payload, root=0,
                                             algorithm="ft_binomial")
            return out

        res = run_spmd(prog, 8, params=PARAMS,
                       faults=FaultSchedule(retry=policy))
        assert np.array_equal(res.return_values[7], np.arange(8.0))
        assert res.stats[7].timeouts == 2
        assert res.stats[7].recoveries == 1


class TestRecvRetryFailure:
    def test_all_attempts_expired_raises(self):
        policy = RetryPolicy(timeout=0.001, max_attempts=3)

        def prog(ctx):
            if ctx.rank == 0:
                return None  # never sends
            out = yield from ctx.world.recv_retry(0, tag=5, policy=policy)
            return out

        with pytest.raises(FaultToleranceError) as info:
            run_spmd(prog, 2, params=PARAMS)
        assert "rank 0" in str(info.value)
        assert "3" in str(info.value)
