"""Unit tests for the fault-schedule primitives: determinism of the
hash variates, dataclass validation, schedule queries and the textual
spec mini-language."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    DEFAULT_RETRY_POLICY,
    FaultSchedule,
    LinkDegradation,
    MessageDrop,
    RankDeath,
    RankSlowdown,
    RetryPolicy,
    chan_digest,
    coerce_faults,
    parse_fault_spec,
    unit_hash,
)
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestUnitHash:
    def test_range(self):
        for seed in range(5):
            for a in range(10):
                u = unit_hash(seed, a, a + 1, 17)
                assert 0.0 <= u < 1.0

    def test_deterministic(self):
        assert unit_hash(42, 1, 2, 3) == unit_hash(42, 1, 2, 3)

    def test_seed_sensitivity(self):
        assert unit_hash(0, 1, 2, 3) != unit_hash(1, 1, 2, 3)

    def test_coord_sensitivity(self):
        base = unit_hash(7, 0, 1, 2)
        assert unit_hash(7, 0, 1, 3) != base
        assert unit_hash(7, 1, 0, 2) != base

    def test_roughly_uniform(self):
        """Crude sanity: mean of many variates near 1/2."""
        n = 2000
        mean = sum(unit_hash(9, i) for i in range(n)) / n
        assert abs(mean - 0.5) < 0.05


class TestChanDigest:
    def test_deterministic_per_type(self):
        for tag in (0, 7, -70, None, True, False, "bcast",
                    (1, 2), ((0, 1), -3, "x")):
            assert chan_digest(tag) == chan_digest(tag)

    def test_distinguishes_structures(self):
        seen = {chan_digest(t) for t in
                (0, 1, None, True, False, "a", "b", (0,), (0, 0), (1, 0))}
        assert len(seen) == 10

    def test_nested_tuples(self):
        assert chan_digest(((1, 2), 3)) != chan_digest((1, (2, 3)))

    def test_bool_is_not_int(self):
        """bool is an int subclass; the digest must still separate them
        or True would collide with every tag-1 channel."""
        assert chan_digest(True) != chan_digest(1)
        assert chan_digest(False) != chan_digest(0)

    def test_rejects_unhashable_types(self):
        with pytest.raises(ConfigurationError):
            chan_digest(1.5)
        with pytest.raises(ConfigurationError):
            chan_digest([1, 2])


class TestFaultValidation:
    def test_degradation_rejects_speedups(self):
        with pytest.raises(ConfigurationError):
            LinkDegradation(alpha_mult=0.5)
        with pytest.raises(ConfigurationError):
            LinkDegradation(beta_mult=0.0)

    def test_drop_probability_range(self):
        with pytest.raises(ConfigurationError):
            MessageDrop(p=1.0)
        with pytest.raises(ConfigurationError):
            MessageDrop(p=-0.1)
        MessageDrop(p=0.0)
        MessageDrop(p=0.999)

    def test_windows_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            MessageDrop(p=0.1, t0=2.0, t1=1.0)
        with pytest.raises(ConfigurationError):
            LinkDegradation(beta_mult=2.0, t0=1.0, t1=0.5)
        with pytest.raises(ConfigurationError):
            RankSlowdown(rank=0, factor=2.0, t0=3.0, t1=0.0)

    def test_slowdown_factor_floor(self):
        with pytest.raises(ConfigurationError):
            RankSlowdown(rank=0, factor=0.9)

    def test_death_time_nonnegative(self):
        with pytest.raises(ConfigurationError):
            RankDeath(rank=0, time=-1e-9)
        RankDeath(rank=0, time=0.0)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retransmits=0)

    def test_retry_backoff_capped(self):
        policy = RetryPolicy(backoff=1e-3, backoff_multiplier=4.0,
                             max_backoff=5e-3)
        assert policy.backoff_delay(0) == 1e-3
        assert policy.backoff_delay(1) == 4e-3
        assert policy.backoff_delay(2) == 5e-3  # capped
        assert policy.backoff_delay(10) == 5e-3

    def test_escalation_timeout_grows(self):
        policy = RetryPolicy(timeout=0.01, timeout_multiplier=2.0)
        assert policy.escalation_timeout(0) == 0.01
        assert policy.escalation_timeout(3) == pytest.approx(0.08)


class TestFaultSchedule:
    def test_classification(self):
        sched = FaultSchedule(seed=1, faults=[
            MessageDrop(p=0.1),
            LinkDegradation(beta_mult=2.0),
            RankSlowdown(rank=3, factor=2.0),
            RankDeath(rank=5, time=1.0),
        ])
        assert len(sched.drops) == 1
        assert len(sched.degradations) == 1
        assert len(sched.slowdowns) == 1
        assert len(sched.deaths) == 1
        assert not sched.empty
        assert not sched.transient_only

    def test_empty_and_transient_flags(self):
        assert FaultSchedule().empty
        assert FaultSchedule().transient_only
        assert FaultSchedule(faults=[MessageDrop(p=0.1)]).transient_only

    def test_rejects_unknown_fault(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(faults=["not a fault"])

    def test_rejects_duplicate_deaths(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(faults=[RankDeath(rank=2, time=0.1),
                                  RankDeath(rank=2, time=0.2)])

    def test_death_events_sorted(self):
        sched = FaultSchedule(faults=[RankDeath(rank=5, time=0.2),
                                      RankDeath(rank=1, time=0.1),
                                      RankDeath(rank=0, time=0.2)])
        assert [(d.time, d.rank) for d in sched.death_events()] == [
            (0.1, 1), (0.2, 0), (0.2, 5)]

    def test_default_retry_policy(self):
        assert FaultSchedule().retry is DEFAULT_RETRY_POLICY

    def test_compute_factor_stacks(self):
        sched = FaultSchedule(faults=[
            RankSlowdown(rank=1, factor=2.0),
            RankSlowdown(rank=1, factor=3.0, t0=0.0, t1=1.0),
        ])
        assert sched.compute_factor(1, 0.5) == 6.0
        assert sched.compute_factor(1, 2.0) == 2.0  # window expired
        assert sched.compute_factor(0, 0.5) == 1.0

    def test_link_factors_window_and_endpoints(self):
        sched = FaultSchedule(faults=[
            LinkDegradation(alpha_mult=3.0, beta_mult=2.0, src=0, dst=1,
                            t0=0.0, t1=1.0),
        ])
        assert sched.link_factors(0, 1, 0.5) == (3.0, 2.0)
        assert sched.link_factors(0, 1, 1.0) == (1.0, 1.0)  # [t0, t1)
        assert sched.link_factors(1, 0, 0.5) == (1.0, 1.0)

    def test_transfer_time_degrades_alpha_and_beta_separately(self):
        net = HomogeneousNetwork(4, PARAMS)
        sched = FaultSchedule(faults=[
            LinkDegradation(alpha_mult=2.0, beta_mult=4.0),
        ])
        nbytes = 1 << 20
        alpha = net.transfer_time(0, 1, 0)
        clean = net.transfer_time(0, 1, nbytes)
        assert sched.transfer_time(net, 0, 1, nbytes, 0.0) == pytest.approx(
            2.0 * alpha + 4.0 * (clean - alpha))

    def test_transfer_time_clean_outside_window(self):
        net = HomogeneousNetwork(4, PARAMS)
        sched = FaultSchedule(faults=[
            LinkDegradation(beta_mult=8.0, t0=1.0, t1=2.0),
        ])
        clean = net.transfer_time(0, 1, 4096)
        assert sched.transfer_time(net, 0, 1, 4096, 0.0) == clean

    def test_drop_monotone_in_probability(self):
        """Raising p can only add drops, never remove one — the variate
        is independent of p (severity monotonicity)."""
        lo = FaultSchedule(seed=77, faults=[MessageDrop(p=0.1)])
        hi = FaultSchedule(seed=77, faults=[MessageDrop(p=0.6)])
        for ordinal in range(200):
            if lo.drop(0, 1, 42, ordinal, 0, 0.0):
                assert hi.drop(0, 1, 42, ordinal, 0, 0.0)

    def test_drop_rules_compose(self):
        """Two overlapping rules drop with 1 - (1-p1)(1-p2)."""
        sched = FaultSchedule(seed=5, faults=[
            MessageDrop(p=0.3), MessageDrop(p=0.3)])
        single = FaultSchedule(seed=5, faults=[MessageDrop(p=0.51)])
        for ordinal in range(100):
            assert (sched.drop(0, 1, 0, ordinal, 0, 0.0)
                    == single.drop(0, 1, 0, ordinal, 0, 0.0))

    def test_drop_never_fires_at_zero_probability(self):
        sched = FaultSchedule(seed=3, faults=[MessageDrop(p=0.0)])
        assert not any(sched.drop(0, 1, 0, k, 0, 0.0) for k in range(100))

    def test_describe_mentions_every_kind(self):
        sched = FaultSchedule(seed=9, faults=[
            MessageDrop(p=0.1), LinkDegradation(beta_mult=2.0),
            RankSlowdown(rank=0, factor=2.0), RankDeath(rank=1, time=0.5)])
        text = sched.describe()
        for word in ("drop", "degraded", "slowdown", "death", "seed=9"):
            assert word in text
        assert "no faults" in FaultSchedule().describe()


class TestSpecParsing:
    def test_round_trip(self):
        sched = parse_fault_spec(
            "drop(p=0.05, src=0, dst=1); degrade(alpha=2, beta=8, t0=0, t1=0.5);"
            " slow(rank=3, factor=10); kill(rank=5, t=0.25);"
            " retry(timeout=0.01, max_attempts=4)",
            seed=42,
        )
        assert sched.seed == 42
        assert sched.drops == (MessageDrop(p=0.05, src=0, dst=1),)
        assert sched.degradations == (
            LinkDegradation(alpha_mult=2.0, beta_mult=8.0, t0=0.0, t1=0.5),)
        assert sched.slowdowns == (RankSlowdown(rank=3, factor=10.0),)
        assert sched.deaths == (RankDeath(rank=5, time=0.25),)
        assert sched.retry.timeout == 0.01
        assert sched.retry.max_attempts == 4

    def test_empty_spec_is_empty_schedule(self):
        assert parse_fault_spec("").empty
        assert parse_fault_spec(" ; ; ").empty

    def test_whitespace_tolerant(self):
        sched = parse_fault_spec("  drop( p = 0.1 )  ;  slow(rank=0,factor=2)")
        assert sched.drops[0].p == 0.1
        assert sched.drops[0].t1 == math.inf

    def test_bad_clause_shape(self):
        with pytest.raises(ConfigurationError, match="cannot parse"):
            parse_fault_spec("drop:p=0.2")

    def test_unknown_clause_name(self):
        with pytest.raises(ConfigurationError, match="unknown clause"):
            parse_fault_spec("explode(rank=0)")

    def test_bad_number(self):
        with pytest.raises(ConfigurationError, match="bad number"):
            parse_fault_spec("drop(p=lots)")

    def test_missing_equals(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_fault_spec("drop(0.5)")

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("drop(p=0.1, colour=3)")

    def test_retry_only_once(self):
        with pytest.raises(ConfigurationError, match="more than once"):
            parse_fault_spec("retry(timeout=0.1); retry(timeout=0.2)")

    def test_validation_propagates(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("drop(p=1.5)")


class TestCoerceFaults:
    def test_none_passthrough(self):
        assert coerce_faults(None) is None

    def test_schedule_passthrough(self):
        sched = FaultSchedule(seed=3)
        assert coerce_faults(sched) is sched

    def test_string_parsed_with_seed(self):
        sched = coerce_faults("drop(p=0.1)", seed=11)
        assert isinstance(sched, FaultSchedule)
        assert sched.seed == 11

    def test_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            coerce_faults(3.14)
