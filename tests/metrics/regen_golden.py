"""Thin wrapper around ``pytest --regen-golden`` (kept for muscle memory).

Golden regeneration now lives in the test suite itself: any golden test
rewrites its reference file when run with the ``--regen-golden`` option
(see tests/conftest.py and docs/observability.md).  Equivalent to:

    PYTHONPATH=src python -m pytest tests/metrics --regen-golden
"""

import os
import pathlib
import subprocess
import sys


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(repo / "src"), env.get("PYTHONPATH")) if p)
    return subprocess.call(
        [sys.executable, "-m", "pytest", str(repo / "tests" / "metrics"),
         "--regen-golden", "-q"],
        env=env,
    )


if __name__ == "__main__":
    raise SystemExit(main())
