"""Regenerate the golden Chrome trace for test_metrics.py.

Run after an *intentional* exporter or simulator change:

    PYTHONPATH=src python tests/metrics/regen_golden.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.core.summa import run_summa  # noqa: E402
from repro.metrics import to_chrome_json  # noqa: E402
from repro.payloads import PhantomArray  # noqa: E402


def main() -> None:
    A, B = PhantomArray((64, 64)), PhantomArray((64, 64))
    _, sim = run_summa(A, B, grid=(2, 2), block=32, gamma=5e-9, trace=True)
    out = pathlib.Path(__file__).parent / "golden_trace_2x2_summa.json"
    out.write_text(to_chrome_json(sim) + "\n")
    print(f"wrote {out} ({len(sim.trace)} transfers, "
          f"{sum(1 for _ in sim.iter_spans())} spans)")


if __name__ == "__main__":
    main()
