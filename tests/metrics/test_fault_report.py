"""The fault-accounting metrics view (``repro.metrics.fault_report``)."""

import pytest

from repro.metrics import FaultReport, FaultRow, fault_report
from repro.simulator.tracing import RankStats, SimResult


def _sim(stats):
    return SimResult(stats=stats, return_values=[None] * len(stats))


class TestFaultReport:
    def test_clean_run_is_empty(self):
        rep = fault_report(_sim([RankStats(rank=0), RankStats(rank=1)]))
        assert rep.rows == ()
        assert not rep.faulted
        assert rep.total_retries == 0
        assert rep.total_fault_delay == 0.0

    def test_only_faulted_ranks_included(self):
        rep = fault_report(_sim([
            RankStats(rank=0),
            RankStats(rank=1, retries=2, fault_delay=0.5),
            RankStats(rank=2, timeouts=1),
        ]))
        assert [r.rank for r in rep.rows] == [1, 2]
        assert rep.nranks == 3
        assert rep.faulted

    def test_totals(self):
        rep = fault_report(_sim([
            RankStats(rank=0, retries=2, fault_delay=0.5),
            RankStats(rank=1, timeouts=3, recoveries=1, fault_delay=0.25),
        ]))
        assert rep.total_retries == 2
        assert rep.total_timeouts == 3
        assert rep.total_recoveries == 1
        assert rep.total_fault_delay == pytest.approx(0.75)

    def test_getitem_by_rank(self):
        rep = fault_report(_sim([
            RankStats(rank=0), RankStats(rank=1, retries=4)]))
        assert rep[1] == FaultRow(rank=1, retries=4, timeouts=0,
                                  recoveries=0, fault_delay=0.0)
        with pytest.raises(KeyError):
            rep[0]  # clean rank: not in the report

    def test_table_and_csv(self):
        rep = fault_report(_sim([
            RankStats(rank=0, retries=2, fault_delay=0.5),
            RankStats(rank=3, recoveries=1),
        ]))
        table = rep.to_table()
        assert "rank" in table and "total" in table
        assert "0.500000" in table
        csv = rep.to_csv()
        assert csv.splitlines()[0] == "rank,retries,timeouts,recoveries,fault_delay"
        assert len(csv.splitlines()) == 3

    def test_empty_table_renders(self):
        table = FaultReport(nranks=2, rows=()).to_table()
        assert "total" in table
