"""Tests for repro.metrics: rollups, critical path, exporters."""

import json
import pathlib

import pytest

from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.errors import ConfigurationError
from repro.metrics import (
    critical_path,
    phase_rollup,
    spans_to_csv,
    to_chrome_json,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.simulator.engine import Engine
from repro.simulator.requests import ComputeRequest, RecvRequest, SendRequest

GOLDEN = pathlib.Path(__file__).parent / "golden_trace_2x2_summa.json"
PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _summa_2x2():
    A, B = PhantomArray((64, 64)), PhantomArray((64, 64))
    _, sim = run_summa(A, B, grid=(2, 2), block=32, gamma=5e-9, trace=True)
    return sim


def _hsumma_4x4():
    A, B = PhantomArray((256, 256)), PhantomArray((256, 256))
    _, sim = run_hsumma(A, B, grid=(4, 4), groups=4, outer_block=32,
                        gamma=5e-9, trace=True)
    return sim


class TestPhaseRollup:
    def test_rows_partition_makespan_exactly(self):
        sim = _hsumma_4x4()
        breakdown = phase_rollup(sim)
        assert breakdown.total == sim.total_time
        assert abs(breakdown.attributed_total - sim.total_time) <= 1e-9

    def test_expected_hsumma_phases(self):
        breakdown = phase_rollup(_hsumma_4x4())
        names = [r.name for r in breakdown.rows]
        assert names == ["bcast.inter", "bcast.intra", "gemm", "other"]

    def test_traffic_attribution_covers_all_sends(self):
        sim = _hsumma_4x4()
        breakdown = phase_rollup(sim)
        rank = breakdown.rank
        sent = sim.stats[rank].bytes_sent
        assert sum(r.bytes for r in breakdown.rows) == sent
        assert sum(r.messages for r in breakdown.rows) == \
            sim.stats[rank].messages_sent

    def test_gemm_has_no_traffic(self):
        breakdown = phase_rollup(_hsumma_4x4())
        assert breakdown["gemm"].messages == 0
        assert breakdown["gemm"].bytes == 0

    def test_every_rank_partitions_its_clock(self):
        sim = _hsumma_4x4()
        for rank in range(sim.nranks):
            breakdown = phase_rollup(sim, rank=rank)
            assert breakdown.attributed_total == \
                pytest.approx(sim.stats[rank].clock, abs=1e-12)

    def test_table_and_csv_render(self):
        breakdown = phase_rollup(_summa_2x2())
        table = breakdown.to_table()
        assert "bcast.row" in table and "total" in table
        csv = breakdown.to_csv()
        assert csv.splitlines()[0] == "phase,seconds,fraction,spans,messages,bytes"
        assert len(csv.splitlines()) == len(breakdown.rows) + 1

    def test_requires_trace(self):
        A, B = PhantomArray((64, 64)), PhantomArray((64, 64))
        _, sim = run_summa(A, B, grid=(2, 2), block=32)
        with pytest.raises(ConfigurationError, match="trace"):
            phase_rollup(sim)

    def test_bad_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            phase_rollup(_summa_2x2(), rank=99)


class TestCriticalPath:
    def test_simple_relay_chain(self):
        """0 computes, sends to 1; 1 forwards to 2: the path must walk
        back through both transfers and the compute."""

        def r0():
            yield ComputeRequest(1.0)
            yield SendRequest(1, 0, b"x" * 1000)

        def r1():
            yield RecvRequest(0, 0)
            yield SendRequest(2, 0, b"x" * 1000)

        def r2():
            yield RecvRequest(1, 0)

        sim = Engine(HomogeneousNetwork(3, PARAMS), collect_trace=True).run(
            [r0(), r1(), r2()]
        )
        path = critical_path(sim)
        kinds = [(s.kind, s.rank) for s in path.segments]
        assert kinds == [("local", 0), ("transfer", 0), ("transfer", 1)]
        # Segments tile the makespan.
        assert path.transfer_time + path.local_time == \
            pytest.approx(sim.total_time)
        assert path.segments[-1].finish == pytest.approx(sim.total_time)

    def test_segments_are_contiguous_and_end_at_makespan(self):
        sim = _hsumma_4x4()
        path = critical_path(sim)
        assert path.segments[0].start == pytest.approx(0.0)
        assert path.segments[-1].finish == pytest.approx(sim.total_time)
        for a, b in zip(path.segments, path.segments[1:]):
            assert a.finish == pytest.approx(b.start)

    def test_phase_attribution_present(self):
        path = critical_path(_hsumma_4x4())
        phases = {s.phase for s in path.segments}
        assert "gemm" in phases
        assert phases & {"bcast.inter", "bcast.intra"}

    def test_phase_times_sum_to_makespan(self):
        sim = _hsumma_4x4()
        path = critical_path(sim)
        assert sum(path.phase_times().values()) == \
            pytest.approx(sim.total_time)

    def test_table_renders(self):
        out = critical_path(_summa_2x2()).to_table()
        assert "critical path" in out
        assert "transfer" in out


class TestChromeExporter:
    def test_events_well_formed(self):
        doc = to_chrome_trace(_summa_2x2())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        for ev in doc["traceEvents"]:
            assert ev["ph"] in {"M", "X", "s", "f"}
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert ev["ts"] >= 0

    def test_span_slices_match_span_count(self):
        sim = _summa_2x2()
        doc = to_chrome_trace(sim)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["cat"] != "transfer"]
        assert len(slices) == sum(1 for _ in sim.iter_spans())

    def test_flow_events_pair_up(self):
        doc = to_chrome_trace(_summa_2x2())
        starts = [e["id"] for e in doc["traceEvents"] if e["ph"] == "s"]
        ends = [e["id"] for e in doc["traceEvents"] if e["ph"] == "f"]
        assert starts == ends and len(starts) > 0

    def test_json_round_trip(self):
        text = to_chrome_json(_summa_2x2())
        doc = json.loads(text)
        assert doc["otherData"]["nranks"] == 4

    def test_write_chrome_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace(_summa_2x2(), str(out))
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_golden_2x2_summa(self, regen_golden):
        """The exporter output on a fixed 2x2 SUMMA run is pinned: the
        trace is a reproducible artifact, so any diff here is a real
        behaviour change (regenerate with ``pytest --regen-golden``,
        see docs/observability.md)."""
        produced = to_chrome_json(_summa_2x2())
        if regen_golden:
            GOLDEN.write_text(produced + "\n")
        golden = json.loads(GOLDEN.read_text())
        assert json.loads(produced) == golden


class TestSpanCsv:
    def test_rows_and_paths(self):
        sim = _summa_2x2()
        lines = spans_to_csv(sim).splitlines()
        assert lines[0] == "rank,path,name,start,end,duration,self_time,attrs"
        assert len(lines) == 1 + sum(1 for _ in sim.iter_spans())
        assert any("bcast.row/coll.bcast" in line for line in lines[1:])

    def test_attrs_embedded(self):
        csv = spans_to_csv(_summa_2x2())
        assert "algorithm=binomial" in csv
        assert "comm_size=2" in csv


class TestPhaseTimeline:
    def test_render_and_legend(self):
        from repro.experiments.timeline import render_phase_timeline

        out = render_phase_timeline(_summa_2x2(), width=40)
        assert "rank 0" in out and "rank 3" in out
        assert "#=gemm" in out
        assert "a=bcast.row" in out

    def test_requires_spans(self):
        from repro.experiments.timeline import render_phase_timeline

        A, B = PhantomArray((64, 64)), PhantomArray((64, 64))
        _, sim = run_summa(A, B, grid=(2, 2), block=32)
        with pytest.raises(ConfigurationError, match="spans"):
            render_phase_timeline(sim)
