"""Scheduler behaviour: EASY backfill mechanics and the planner's SLO
edge over FIFO on a contended trace (with and without fail-stop)."""

import pytest

from repro.cluster import (
    JobSpec,
    compare_schedulers,
    poisson_stream,
    serve,
)
from repro.cluster.schedulers import SCHEDULERS, resolve_scheduler
from repro.errors import ConfigurationError
from repro.network.torus import Torus3D
from repro.simulator.runtime import DEFAULT_PARAMS

GAMMA = 1e-11

# The benchmark scenario pinned in benchmarks/bench_job_stream.py: a
# 64-rank torus at ~80% utilisation where queueing dominates, so
# scheduling order actually moves the SLO needle.
CONTENDED = dict(
    machine=lambda: Torus3D((4, 4, 4), DEFAULT_PARAMS),
    jobs=lambda: poisson_stream(
        40, rate=2000.0, seed=11,
        sizes=((256, 4), (384, 4), (512, 16), (1024, 64)),
        weights=(5, 4, 3, 2)),
    slot_grid=(8, 8),
    gamma=GAMMA,
    max_retries=1,
)
FAILURES = "kill(rank=0,t=0.005);kill(rank=37,t=0.012);kill(rank=55,t=0.02)"


def _p99(scheduler, failures=None):
    cfg = dict(CONTENDED)
    machine = cfg.pop("machine")()
    jobs = cfg.pop("jobs")()
    res = serve(jobs, machine=machine, scheduler=scheduler,
                failures=failures, **cfg)
    assert res.report.completed + res.report.failed == len(jobs)
    return res.report


def test_resolve_scheduler_names():
    assert set(SCHEDULERS) == {"fifo", "easy", "planner"}
    for name in SCHEDULERS:
        sched = resolve_scheduler(name, alpha=1e-6, beta=1e-9, gamma=GAMMA)
        assert sched.name == name
    with pytest.raises(ConfigurationError):
        resolve_scheduler("srpt", alpha=1e-6, beta=1e-9, gamma=GAMMA)


def test_easy_backfills_small_job_past_blocked_head():
    # Head job needs the whole 4-slot machine while half is busy; the
    # tiny job behind it finishes before the running job frees the
    # machine, so EASY starts it immediately while FIFO leaves the
    # machine half idle.
    jobs = [JobSpec(jid=0, arrival=0.0, n=256, p=4),
            JobSpec(jid=1, arrival=1e-5, n=256, p=8),
            JobSpec(jid=2, arrival=2e-5, n=64, p=4)]
    fifo = serve(jobs, slots=8, scheduler="fifo", gamma=GAMMA)
    easy = serve(jobs, slots=8, scheduler="easy", gamma=GAMMA)
    fifo_by = {r.job.jid: r for r in fifo.records}
    easy_by = {r.job.jid: r for r in easy.records}
    # EASY runs job 2 in the idle half while job 1 waits for job 0.
    assert easy_by[2].queue_wait < fifo_by[2].queue_wait
    # The reservation protects the head: it never starts later.
    assert easy_by[1].first_start <= fifo_by[1].first_start


def test_backfill_never_delays_reserved_head():
    # A long job that would overrun the head's reservation must not be
    # backfilled into the gap.
    jobs = [JobSpec(jid=0, arrival=0.0, n=512, p=4),
            JobSpec(jid=1, arrival=1e-5, n=256, p=8),
            JobSpec(jid=2, arrival=2e-5, n=1024, p=4)]
    easy = serve(jobs, slots=8, scheduler="easy", gamma=GAMMA)
    by = {r.job.jid: r for r in easy.records}
    # Job 2's predicted run exceeds job 0's remaining time, so it waits
    # until after the reserved head has started.
    assert by[2].first_start >= by[1].first_start


def test_planner_beats_fifo_p99_on_contended_trace():
    fifo = _p99("fifo")
    planner = _p99("planner")
    assert planner.latency_p99 < fifo.latency_p99
    assert fifo.failed == 0 and planner.failed == 0


def test_planner_beats_fifo_p99_under_fail_stop():
    fifo = _p99("fifo", failures=FAILURES)
    planner = _p99("planner", failures=FAILURES)
    assert planner.latency_p99 < fifo.latency_p99
    # The kills land on busy slots and every job still completes via
    # retry on this trace.
    assert fifo.retried_attempts > 0
    assert fifo.failed == 0 and planner.failed == 0


def test_compare_schedulers_shares_one_trace():
    jobs = poisson_stream(10, rate=800.0, seed=7,
                          sizes=((128, 4), (256, 8)))
    results = compare_schedulers(jobs, ("fifo", "easy", "planner"),
                                 slots=8, gamma=GAMMA)
    assert set(results) == {"fifo", "easy", "planner"}
    for result in results.values():
        assert result.report.completed == len(jobs)
        assert result.report.utilisation > 0.0


def test_all_schedulers_report_full_slo_surface():
    jobs = poisson_stream(8, rate=600.0, seed=5,
                          sizes=((128, 4), (256, 8)))
    for name in SCHEDULERS:
        res = serve(jobs, slots=8, scheduler=name, gamma=GAMMA)
        payload = res.report.to_dict()
        for key in ("scheduler", "jobs", "completed", "failed", "rejected",
                    "makespan", "throughput", "latency_p50", "latency_p99",
                    "latency_mean", "queue_wait_p50", "queue_wait_max",
                    "queue_wait_mean", "utilisation", "retried_attempts"):
            assert key in payload, (name, key)
        assert payload["scheduler"] == name
