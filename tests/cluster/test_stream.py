"""The stream simulator's two contracts: 1-job bit-identity and
whole-stream determinism in (seed, trace, scheduler)."""

import pytest

from repro.cluster import (
    JobSpec,
    build_programs,
    dumps_trace,
    loads_trace,
    poisson_stream,
    serve,
)
from repro.cluster.programs import naive_launch
from repro.core.summa import run_summa
from repro.errors import ConfigurationError
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.subnet import SubNetwork
from repro.network.torus import Torus3D
from repro.network.tree import SwitchedCluster
from repro.payloads import PhantomArray
from repro.simulator.engine import Engine
from repro.simulator.runtime import DEFAULT_PARAMS

GAMMA = 1e-11


def _one_job_stream(machine, job, **kwargs):
    res = serve([job], machine=machine, scheduler="fifo", gamma=GAMMA,
                contention=True, collect_trace=True, **kwargs)
    record = res.records[0]
    assert record.status == "done"
    return record


def _assert_sim_equal(got, want):
    assert got.stats == want.stats
    assert got.trace == want.trace
    assert got.spans == want.spans
    assert [v.shape for v in got.return_values] == \
        [v.shape for v in want.return_values]


def test_one_job_stream_is_bit_identical_on_torus():
    machine = Torus3D((4, 2, 2), DEFAULT_PARAMS)
    job = JobSpec(jid=0, arrival=0.0, n=256, p=16)
    record = _one_job_stream(machine, job, slot_grid=(4, 4))
    slots = record.attempts[0].slots
    spec = naive_launch(job, alpha=DEFAULT_PARAMS.alpha,
                        beta=DEFAULT_PARAMS.beta, gamma=GAMMA)
    standalone = Engine(
        SubNetwork(machine, slots), contention=True, collect_trace=True,
    ).run(build_programs(job, spec, gamma=GAMMA, trace=True))
    _assert_sim_equal(record.result, standalone)


def test_one_job_stream_matches_run_summa():
    # On a homogeneous machine the whole grid is one placement block, so
    # the stream must reproduce the public runner's SimResult exactly.
    machine = HomogeneousNetwork(16, DEFAULT_PARAMS)
    job = JobSpec(jid=0, arrival=0.0, n=256, p=16)
    record = _one_job_stream(machine, job)
    spec = record.launch
    _, standalone = run_summa(
        PhantomArray((256, 256)), PhantomArray((256, 256)),
        grid=(spec.s, spec.t), block=spec.block, network=machine,
        gamma=GAMMA, contention=True, trace=True,
    )
    _assert_sim_equal(record.result, standalone)


def test_one_job_nonzero_arrival_shifts_clock():
    machine = HomogeneousNetwork(16, DEFAULT_PARAMS)
    t0 = 0.125
    job = JobSpec(jid=0, arrival=t0, n=256, p=16)
    record = _one_job_stream(machine, job)
    base = _one_job_stream(machine,
                           JobSpec(jid=0, arrival=0.0, n=256, p=16))
    assert record.latency == pytest.approx(base.latency)
    assert record.result.total_time == pytest.approx(
        base.result.total_time + t0)


@pytest.mark.parametrize("scheduler", ["fifo", "easy", "planner"])
def test_stream_deterministic_in_seed_trace_scheduler(scheduler):
    # Property pinned by the issue: rerunning the same (seed, trace,
    # scheduler) triple gives identical reports and per-job outcomes;
    # changing the seed changes the outcome.
    def run(seed):
        machine = Torus3D((2, 2, 2), DEFAULT_PARAMS)
        jobs = poisson_stream(12, rate=1200.0, seed=seed,
                              sizes=((128, 4), (256, 8)))
        res = serve(jobs, machine=machine, slot_grid=(4, 2),
                    scheduler=scheduler, gamma=GAMMA,
                    failures="kill(rank=0,t=0.002)", max_retries=1)
        detail = [(r.job.jid, r.status, r.latency, r.queue_wait,
                   r.failed_attempts) for r in res.records]
        return res.report.to_dict(), detail

    first = run(9)
    assert first == run(9)
    assert first != run(10)


def test_trace_round_trip_preserves_stream_outcome():
    jobs = poisson_stream(8, rate=800.0, seed=4, sizes=((128, 4), (256, 8)))
    replayed = loads_trace(dumps_trace(jobs))

    def outcome(stream):
        res = serve(stream, slots=8, scheduler="fifo", gamma=GAMMA)
        return res.report.to_dict()

    assert outcome(jobs) == outcome(replayed)


def test_failure_retry_and_exhaustion():
    machine = HomogeneousNetwork(16, DEFAULT_PARAMS)
    job = JobSpec(jid=0, arrival=0.0, n=256, p=16)

    retried = serve([job], machine=machine, scheduler="fifo", gamma=GAMMA,
                    failures="kill(rank=0,t=0.0005)", max_retries=1)
    record = retried.records[0]
    assert record.status == "done"
    assert record.failed_attempts == 1
    assert len(record.attempts) == 2
    # The retry starts when the failure frees the machine.
    assert record.attempts[1].start == pytest.approx(0.0005)

    dead = serve([job], machine=machine, scheduler="fifo", gamma=GAMMA,
                 failures="kill(rank=0,t=0.0005)", max_retries=0)
    assert dead.records[0].status == "failed"
    assert dead.records[0].latency == pytest.approx(0.0005)
    assert dead.report.failed == 1

    # A kill aimed at an idle slot is absorbed.
    idle = serve([job], machine=machine, scheduler="fifo", gamma=GAMMA,
                 failures="kill(rank=0,t=99.0)", max_retries=0)
    assert idle.records[0].status == "done"


def test_failure_killing_the_retry_too():
    machine = HomogeneousNetwork(16, DEFAULT_PARAMS)
    job = JobSpec(jid=0, arrival=0.0, n=256, p=16)
    res = serve([job], machine=machine, scheduler="fifo", gamma=GAMMA,
                failures="kill(rank=0,t=0.0004);kill(rank=5,t=0.0006)",
                max_retries=1)
    record = res.records[0]
    assert record.status == "failed"
    assert record.failed_attempts == 2


def test_oversized_job_rejected_not_wedged():
    res = serve([JobSpec(jid=0, arrival=0.0, n=256, p=64),
                 JobSpec(jid=1, arrival=0.0, n=128, p=4)],
                slots=16, scheduler="fifo", gamma=GAMMA)
    by_jid = {r.job.jid: r for r in res.records}
    assert by_jid[0].status == "rejected"
    assert by_jid[1].status == "done"
    assert res.report.rejected == 1


def test_non_death_failure_classes_rejected():
    with pytest.raises(ConfigurationError):
        serve([JobSpec(jid=0, arrival=0.0, n=128, p=4)], slots=4,
              failures="drop(p=0.5)")


def test_cross_job_contention_on_shared_uplinks():
    # On a switched cluster, a (2, 8) slot grid places each job's 2x4
    # block across both edge switches, so the two jobs fight over the
    # same core uplinks and each runs slower than it would alone.
    machine = SwitchedCluster(16, 8, DEFAULT_PARAMS)
    jobs = [JobSpec(jid=0, arrival=0.0, n=256, p=8),
            JobSpec(jid=1, arrival=0.0, n=256, p=8)]
    both = serve(jobs, machine=machine, slot_grid=(2, 8), scheduler="fifo",
                 gamma=GAMMA, contention=True)
    alone = serve(jobs[:1], machine=machine, slot_grid=(2, 8),
                  scheduler="fifo", gamma=GAMMA, contention=True)
    lat_alone = alone.records[0].latency
    lat_shared = max(r.latency for r in both.records)
    assert lat_shared > lat_alone
