"""The ``hsumma serve`` subcommand end to end."""

import json

from repro.cli import main
from repro.cluster import dump_trace, poisson_stream


def test_serve_check_smoke(capsys):
    assert main(["serve", "--check"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("serve --check: OK")


def test_serve_json_reports_all_slo_fields(capsys):
    code = main(["serve", "--jobs", "6", "--rate", "800", "--seed", "2",
                 "--slots", "64", "--topology", "torus",
                 "--scheduler", "fifo,easy", "--gamma", "1e-11", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"]["jobs"] == 6
    assert payload["machine"]["slots"] == 64
    assert set(payload["reports"]) == {"fifo", "easy"}
    for report in payload["reports"].values():
        for key in ("throughput", "latency_p50", "latency_p99",
                    "queue_wait_p50", "queue_wait_max", "utilisation",
                    "makespan", "retried_attempts"):
            assert key in report
        assert report["completed"] == 6


def test_serve_reads_jsonl_trace(tmp_path, capsys):
    trace = tmp_path / "arrivals.jsonl"
    dump_trace(poisson_stream(5, rate=600.0, seed=1,
                              sizes=((128, 4), (256, 8))), str(trace))
    code = main(["serve", "--arrivals", str(trace), "--slots", "8",
                 "--scheduler", "fifo", "--gamma", "1e-11", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"]["source"] == str(trace)
    assert payload["reports"]["fifo"]["jobs"] == 5


def test_serve_text_report_per_scheduler(capsys):
    code = main(["serve", "--jobs", "4", "--rate", "500", "--seed", "6",
                 "--slots", "8", "--scheduler", "fifo,planner",
                 "--gamma", "1e-11",
                 "--failures", "kill(rank=0,t=0.0005)"])
    assert code == 0
    out = capsys.readouterr().out
    assert "scheduler: fifo" in out
    assert "scheduler: planner" in out
    assert "latency" in out and "utilisation" in out


def test_serve_rejects_bad_slot_grid(capsys):
    assert main(["serve", "--slot-grid", "nonsense"]) == 2
    assert "--slot-grid" in capsys.readouterr().err
