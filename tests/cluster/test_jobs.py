"""Arrival processes and the JSONL trace format."""

import pytest

from repro.cluster import (
    JobSpec,
    dumps_trace,
    loads_trace,
    poisson_stream,
)
from repro.cluster.jobs import validate_stream
from repro.errors import ConfigurationError


def test_poisson_stream_is_deterministic_in_seed():
    a = poisson_stream(25, rate=100.0, seed=42)
    b = poisson_stream(25, rate=100.0, seed=42)
    c = poisson_stream(25, rate=100.0, seed=43)
    assert a == b
    assert a != c


def test_poisson_stream_monotone_arrivals_and_ids():
    jobs = poisson_stream(50, rate=10.0, seed=1)
    assert [j.jid for j in jobs] == list(range(50))
    arrivals = [j.arrival for j in jobs]
    assert arrivals == sorted(arrivals)
    assert all(t > 0 for t in arrivals)


def test_poisson_stream_weights_bias_sizes():
    jobs = poisson_stream(200, rate=10.0, seed=0,
                          sizes=((128, 4), (1024, 64)), weights=(1, 0))
    assert {(j.n, j.p) for j in jobs} == {(128, 4)}


def test_trace_round_trip():
    jobs = poisson_stream(10, rate=5.0, seed=3)
    jobs[3] = JobSpec(jid=3, arrival=jobs[3].arrival, n=jobs[3].n,
                      p=jobs[3].p, algorithm="hsumma")
    text = dumps_trace(jobs)
    assert loads_trace(text) == validate_stream(jobs)


def test_trace_rejects_garbage():
    with pytest.raises(ConfigurationError):
        loads_trace("not json\n")
    with pytest.raises(ConfigurationError):
        loads_trace('{"jid": 0, "arrival": 0.0, "n": 64}\n')  # missing p
    with pytest.raises(ConfigurationError):
        loads_trace('{"jid": 0, "arrival": 0.0, "n": 64, "p": 4, "x": 1}\n')
    with pytest.raises(ConfigurationError):
        loads_trace("")


def test_trace_skips_comments_and_blank_lines():
    text = '# a comment\n\n{"jid": 0, "arrival": 0.5, "n": 64, "p": 4}\n'
    jobs = loads_trace(text)
    assert jobs == [JobSpec(jid=0, arrival=0.5, n=64, p=4)]


def test_duplicate_jid_rejected():
    jobs = [JobSpec(jid=0, arrival=0.0, n=64, p=4),
            JobSpec(jid=0, arrival=1.0, n=64, p=4)]
    with pytest.raises(ConfigurationError):
        validate_stream(jobs)


def test_jobspec_validation():
    with pytest.raises(ConfigurationError):
        JobSpec(jid=0, arrival=-1.0, n=64, p=4)
    with pytest.raises(ConfigurationError):
        JobSpec(jid=0, arrival=0.0, n=0, p=4)
    with pytest.raises(ConfigurationError):
        JobSpec(jid=0, arrival=0.0, n=64, p=4, algorithm="cannon")
