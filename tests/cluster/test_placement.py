"""Rectangular sub-grid placement on the shared slot grid."""

import pytest

from repro.cluster.placement import SlotGrid
from repro.errors import ConfigurationError
from repro.network.mapping import subgrid_blocks


def test_aligned_placement_follows_zigzag_blocks():
    grid = SlotGrid(4, 4)
    expected = subgrid_blocks(4, 4, 2, 2)
    got = [grid.allocate(2, 2) for _ in range(4)]
    assert tuple(got) == expected
    assert grid.allocate(2, 2) is None
    assert grid.free_count == 0


def test_release_makes_block_reusable():
    grid = SlotGrid(4, 4)
    first = grid.allocate(2, 2)
    second = grid.allocate(2, 2)
    grid.release(first)
    assert grid.allocate(2, 2) == first
    grid.release(second)
    with pytest.raises(ConfigurationError):
        grid.release(second)  # double release


def test_block_is_in_job_rank_order():
    grid = SlotGrid(4, 8)
    slots = grid.allocate(2, 4)
    # job rank i*t+j must sit at physical (r0+i, c0+j)
    assert slots == (0, 1, 2, 3, 8, 9, 10, 11)


def test_transposed_placement_when_needed():
    grid = SlotGrid(4, 2)
    slots = grid.allocate(2, 4)  # only fits rotated (4 rows x 2 cols)
    assert slots is not None
    # job (i, j) -> physical (j, i): row-major over job ranks
    assert slots == (0, 2, 4, 6, 1, 3, 5, 7)
    assert grid.free_count == 0


def test_unaligned_anchor_scan():
    grid = SlotGrid(3, 3)
    a = grid.allocate(2, 2)
    assert a == (0, 1, 3, 4)
    b = grid.allocate(1, 3)
    assert b == (6, 7, 8)
    assert grid.allocate(2, 2) is None


def test_fits_empty_considers_both_orientations():
    grid = SlotGrid(2, 8)
    assert grid.fits_empty(8, 2)
    assert grid.fits_empty(2, 8)
    assert not grid.fits_empty(4, 4)


def test_clone_is_independent():
    grid = SlotGrid(2, 2)
    shadow = grid.clone()
    shadow.allocate(2, 2)
    assert grid.free_count == 4
    assert shadow.free_count == 0
