"""Tests for the parallel sweep executor and its on-disk cache.

Two properties carry the whole design: the cache must never serve a
stale or wrong point (key sensitivity + salt invalidation), and the
executor must be transparent (same results for every ``jobs`` value
and cache state, merged in input order).
"""

import copy
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import _point_spec, _sweep_point, group_sweep
from repro.experiments.parallel import (
    SWEEP_CACHE_SALT,
    SweepCache,
    parallel_map,
    spec_key,
)
from repro.platforms.grid5000 import grid5000_graphene


def _spec(**overrides):
    spec = _point_spec(grid5000_graphene(16), 16, 512, 32, "micro", 4)
    spec.update(overrides)
    return spec


# Module-level so worker processes can import it by qualified name.
def _double(spec):
    return {"value": 2 * spec["x"], "index": spec["i"]}


class TestSpecKey:
    def test_deterministic(self):
        assert spec_key("f", _spec()) == spec_key("f", _spec())

    def test_sensitive_to_every_parameter(self):
        base = _spec()
        variants = [
            _spec(p=32),                         # grid / processor count
            _spec(block=64),                     # block size
            _spec(n=1024),                       # matrix size
            _spec(G=8),                          # group count
            _spec(kind="topology"),              # coster kind
            _spec(faults={"kill": [3]}),         # fault spec
        ]
        # Network parameters live inside the embedded platform signature.
        tweaked = copy.deepcopy(base)
        tweaked["sig"]["alpha"] *= 2
        variants.append(tweaked)
        tweaked = copy.deepcopy(base)
        tweaked["sig"]["beta"] *= 2
        variants.append(tweaked)

        keys = {spec_key("f", v) for v in variants}
        assert spec_key("f", base) not in keys
        assert len(keys) == len(variants)

    def test_sensitive_to_fn_and_salt(self):
        spec = _spec()
        assert spec_key("f", spec) != spec_key("g", spec)
        assert spec_key("f", spec) != spec_key("f", spec, salt="other")

    def test_non_json_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            spec_key("f", {"x": object()})


class TestSweepCache:
    def test_hit_returns_bit_identical_value(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = _spec()
        value = _sweep_point(spec)
        cache.store("f", spec, value)
        hit = cache.lookup("f", spec)
        assert hit == value
        # Bit-identical floats, not just approx — the round trip
        # through JSON must preserve every digit.
        assert hit["comm"].hex() == value["comm"].hex()
        assert hit["total"].hex() == value["total"].hex()

    def test_miss_distinguished_from_cached_none(self, tmp_path):
        from repro.experiments.parallel import _MISS

        cache = SweepCache(tmp_path)
        assert cache.lookup("f", {"x": 1}) is _MISS
        cache.store("f", {"x": 1}, None)
        assert cache.lookup("f", {"x": 1}) is None

    def test_salt_bump_invalidates(self, tmp_path):
        old = SweepCache(tmp_path, salt="v1")
        old.store("f", {"x": 1}, 41)
        new = SweepCache(tmp_path, salt="v2")
        from repro.experiments.parallel import _MISS

        assert new.lookup("f", {"x": 1}) is _MISS
        assert new.prune() == 1
        assert list(tmp_path.glob("*.json")) == []

    def test_prune_keeps_current_salt(self, tmp_path):
        cache = SweepCache(tmp_path, salt="v1")
        cache.store("f", {"x": 1}, 1)
        assert cache.prune() == 0
        assert cache.lookup("f", {"x": 1}) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        from repro.experiments.parallel import _MISS

        cache = SweepCache(tmp_path)
        key = spec_key("f", {"x": 1}, SWEEP_CACHE_SALT)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.lookup("f", {"x": 1}) is _MISS

    def test_entries_are_self_describing(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("pkg.fn", {"x": 1}, 2)
        [path] = tmp_path.glob("*.json")
        entry = json.loads(path.read_text())
        assert entry["fn"] == "pkg.fn"
        assert entry["salt"] == SWEEP_CACHE_SALT
        assert entry["spec"] == {"x": 1}
        assert entry["value"] == 2


class TestParallelMap:
    SPECS = [{"x": x, "i": i} for i, x in enumerate([5, 3, 8, 1, 9, 2])]

    def test_results_in_input_order(self):
        out = parallel_map(_double, self.SPECS, jobs=1)
        assert out == [_double(s) for s in self.SPECS]

    def test_jobs_equivalence(self):
        seq = parallel_map(_double, self.SPECS, jobs=1)
        par = parallel_map(_double, self.SPECS, jobs=4)
        assert seq == par

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            parallel_map(_double, self.SPECS, jobs=0)

    def test_cache_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        first = parallel_map(_double, self.SPECS, jobs=1, cache=cache)
        assert len(list(tmp_path.glob("*.json"))) == len(self.SPECS)

        # Second run: every point served from disk, fn never called.
        def explode(spec):
            raise AssertionError("cache should have served this point")

        explode.__module__ = _double.__module__
        explode.__qualname__ = _double.__qualname__
        again = parallel_map(explode, self.SPECS, jobs=1, cache=cache)
        assert again == first

    def test_partial_cache_fills_gaps(self, tmp_path):
        cache = SweepCache(tmp_path)
        parallel_map(_double, self.SPECS[:3], jobs=1, cache=cache)
        out = parallel_map(_double, self.SPECS, jobs=2, cache=cache)
        assert out == [_double(s) for s in self.SPECS]


class TestGroupSweepParallel:
    def test_jobs_and_cache_transparent(self, tmp_path):
        plat = grid5000_graphene(16)
        base = group_sweep(plat, 16, 512, 32, name="t")
        cache = SweepCache(tmp_path)
        par = group_sweep(plat, 16, 512, 32, name="t", jobs=4, cache=cache)
        hit = group_sweep(plat, 16, 512, 32, name="t", jobs=1, cache=cache)
        assert base.columns == par.columns == hit.columns
        assert base.x == par.x == hit.x

    def test_customised_platform_not_cached(self, tmp_path):
        """A platform that can't be rebuilt from its name must be
        evaluated in-process — never from (or into) the cache."""
        import dataclasses

        plat = grid5000_graphene(16)
        custom = dataclasses.replace(plat, gamma=plat.gamma * 10)
        cache = SweepCache(tmp_path)
        s = group_sweep(custom, 16, 512, 32, name="t", jobs=4, cache=cache)
        assert list(tmp_path.glob("*.json")) == []
        stock = group_sweep(plat, 16, 512, 32, name="t")
        assert s.column("hsumma_total") != stock.column("hsumma_total")
