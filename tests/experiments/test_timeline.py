"""Tests for the ascii timeline renderer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.timeline import communication_matrix, render_timeline
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine
from repro.simulator.requests import ComputeRequest, RecvRequest, SendRequest

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _traced_run():
    def sender():
        yield SendRequest(1, 0, b"x" * 1000)
        yield ComputeRequest(1e-4)

    def receiver():
        yield RecvRequest(0, 0)
        yield ComputeRequest(1e-4)

    eng = Engine(HomogeneousNetwork(2, PARAMS), collect_trace=True)
    return eng.run([sender(), receiver()])


class TestRenderTimeline:
    def test_contains_rank_rows(self):
        out = render_timeline(_traced_run())
        assert "rank 0" in out
        assert "rank 1" in out

    def test_shows_send_and_recv(self):
        out = render_timeline(_traced_run(), width=20)
        lines = out.splitlines()
        row0 = next(l for l in lines if l.strip().startswith("rank 0"))
        row1 = next(l for l in lines if l.strip().startswith("rank 1"))
        assert "s" in row0
        assert "r" in row1

    def test_idle_marked(self):
        out = render_timeline(_traced_run(), width=20)
        row0 = next(l for l in out.splitlines() if "rank 0" in l)
        assert "." in row0  # the compute tail has no transfers

    def test_rank_subset(self):
        out = render_timeline(_traced_run(), ranks=[1])
        assert "rank 1" in out
        assert "rank 0" not in out

    def test_requires_trace(self):
        def sender():
            yield SendRequest(1, 0, b"x")

        def receiver():
            yield RecvRequest(0, 0)

        res = Engine(HomogeneousNetwork(2, PARAMS)).run([sender(), receiver()])
        with pytest.raises(ConfigurationError, match="collect_trace"):
            render_timeline(res)

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            render_timeline(_traced_run(), width=0)

    def test_overlap_visibly_denser(self):
        """The lookahead schedule keeps transfer cells busy during
        compute columns; quick sanity that the tool distinguishes the
        two schedules."""
        from repro.blocks.dmatrix import DistMatrix
        from repro.core.summa import SummaConfig, summa_program
        from repro.core.overlap import summa_overlap_program
        from repro.mpi.comm import MpiContext

        n = 64
        rng = np.random.default_rng(0)
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        cfg = SummaConfig(m=n, l=n, n=n, s=2, t=2, block=8)
        da, db = DistMatrix.from_global(A, 2, 2), DistMatrix.from_global(B, 2, 2)

        def run(factory):
            progs = [
                factory(MpiContext(r, 4, gamma=5e-9),
                        da.tile(*divmod(r, 2)), db.tile(*divmod(r, 2)), cfg)
                for r in range(4)
            ]
            return Engine(HomogeneousNetwork(4, PARAMS),
                          collect_trace=True).run(progs)

        plain = render_timeline(run(summa_program), width=40)
        over = render_timeline(run(summa_overlap_program), width=40)
        assert plain != over


class TestCommunicationMatrix:
    def test_bytes_per_pair(self):
        res = _traced_run()
        matrix = communication_matrix(res)
        assert matrix[0][1] == 1000
        assert matrix[1][0] == 0

    def test_requires_trace(self):
        def sender():
            yield SendRequest(1, 0, b"x")

        def receiver():
            yield RecvRequest(0, 0)

        res = Engine(HomogeneousNetwork(2, PARAMS)).run([sender(), receiver()])
        with pytest.raises(ConfigurationError):
            communication_matrix(res)
