"""Tests for per-step cost profiles."""

import pytest

from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.experiments.profiles import hsumma_step_profile, summa_step_profile
from repro.experiments.stepmodel import (
    AnalyticCoster,
    TopologyCoster,
    hsumma_step_model,
    summa_step_model,
)
from repro.network.model import HockneyParams
from repro.network.torus import Torus3D

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestSummaProfile:
    def test_totals_match_step_model(self):
        cfg = SummaConfig(m=256, l=256, n=256, s=4, t=4, block=16)
        coster = AnalyticCoster(PARAMS, "vandegeijn")
        profile = summa_step_profile(cfg, coster, gamma=1e-9)
        report = summa_step_model(cfg, coster, gamma=1e-9)
        assert profile.total_comm == pytest.approx(report.comm_time)
        assert len(profile.comm_per_step) == cfg.nsteps

    def test_homogeneous_is_flat(self):
        cfg = SummaConfig(m=256, l=256, n=256, s=4, t=4, block=16)
        profile = summa_step_profile(cfg, AnalyticCoster(PARAMS, "binomial"))
        assert profile.variability() == pytest.approx(1.0)

    def test_torus_varies_by_owner(self):
        """On the torus the broadcast cost depends on where the root
        sits, so the per-step profile is no longer flat (use the exact
        micro-DES coster — the L/W-form TopologyCoster is root-blind
        by construction)."""
        from repro.experiments.stepmodel import MicroDesCoster

        cfg = SummaConfig(m=256, l=256, n=256, s=4, t=4, block=16)
        net = Torus3D((4, 2, 2), HockneyParams(3e-6, 1e-9), alpha_hop=2e-6)
        profile = summa_step_profile(cfg, MicroDesCoster(net, "binomial"))
        assert profile.variability() > 1.0

    def test_gemm_per_step(self):
        cfg = SummaConfig(m=64, l=64, n=64, s=4, t=4, block=8)
        profile = summa_step_profile(cfg, AnalyticCoster(PARAMS), gamma=1e-9)
        assert profile.gemm_per_step == pytest.approx(2 * 16 * 8 * 16 * 1e-9)


class TestHSummaProfile:
    def _cfg(self, inner):
        return HSummaConfig(m=256, l=256, n=256, s=4, t=4, I=2, J=2,
                            outer_block=32, inner_block=inner)

    def test_totals_match_step_model(self):
        cfg = self._cfg(8)
        coster = AnalyticCoster(PARAMS, "vandegeijn")
        profile = hsumma_step_profile(cfg, coster)
        report = hsumma_step_model(cfg, coster)
        assert profile.total_comm == pytest.approx(report.comm_time)
        assert len(profile.comm_per_step) == cfg.outer_steps * cfg.inner_steps

    def test_outer_steps_heavier(self):
        """With b < B, the first inner step of each outer block carries
        the outer broadcast — visibly heavier."""
        cfg = self._cfg(8)
        profile = hsumma_step_profile(cfg, AnalyticCoster(PARAMS))
        per = profile.comm_per_step
        inner_steps = cfg.inner_steps
        for K in range(cfg.outer_steps):
            first = per[K * inner_steps]
            rest = per[K * inner_steps + 1 : (K + 1) * inner_steps]
            assert all(first > r for r in rest)

    def test_peak_step_is_an_outer_boundary(self):
        cfg = self._cfg(8)
        profile = hsumma_step_profile(cfg, AnalyticCoster(PARAMS))
        assert profile.peak_step % cfg.inner_steps == 0
