"""Tests for the reproduction scorecard."""

from repro.cli import main
from repro.experiments.report import (
    CheckResult,
    build_scorecard,
    render_scorecard,
)


class TestScorecard:
    def test_all_checks_pass(self):
        results = build_scorecard()
        failing = [r for r in results if not r.passed]
        assert not failing, [f"{r.name}: {r.detail}" for r in failing]

    def test_covers_headline_claims(self):
        names = [r.name for r in build_scorecard()]
        assert any("numerics" in n for n in names)
        assert any("degeneration" in n for n in names)
        assert any("optimum" in n for n in names)
        assert any("threshold" in n for n in names)

    def test_render(self):
        results = [
            CheckResult("good", True, "fine"),
            CheckResult("bad", False, "broken"),
        ]
        text = render_scorecard(results)
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "1/2 checks passed" in text

    def test_cli_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "scorecard" in out
        assert "7/7" in out
