"""Tests for the Series harness."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import Series, speedup


def _series():
    return Series(
        name="demo",
        xlabel="groups",
        x=[1, 2, 4],
        columns={"a": [3.0, 1.0, 2.0], "b": [3.0, 3.0, 3.0]},
        meta={"p": 16},
    )


class TestSeries:
    def test_column_access(self):
        s = _series()
        assert s.column("a") == [3.0, 1.0, 2.0]

    def test_unknown_column(self):
        with pytest.raises(ConfigurationError, match="available"):
            _series().column("zzz")

    def test_min_of(self):
        assert _series().min_of("a") == (2, 1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(name="x", xlabel="g", x=[1, 2], columns={"a": [1.0]})

    def test_to_table_contains_data(self):
        out = _series().to_table()
        assert "groups" in out
        assert "demo" in out  # caption
        assert "p=16" in out

    def test_to_csv_roundtrip(self):
        csv = _series().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "groups,a,b"
        assert len(lines) == 4
        assert lines[1].startswith("1,")

    def test_custom_title(self):
        out = _series().to_table(title="Custom")
        assert out.splitlines()[0] == "Custom"


class TestSpeedup:
    def test_ratio(self):
        s = _series()
        assert speedup(s, "b", "a") == [1.0, 3.0, 1.5]

    def test_nonpositive_rejected(self):
        s = Series(name="x", xlabel="g", x=[1],
                   columns={"a": [0.0], "b": [1.0]})
        with pytest.raises(ConfigurationError):
            speedup(s, "b", "a")
