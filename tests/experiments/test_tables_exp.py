"""Tests for the Table I/II drivers and model validation."""

import math

import pytest

from repro.experiments.tables import (
    cost_table,
    render_cost_table,
    table1,
    table2,
    validate_model,
)
from repro.models.broadcast_model import BINOMIAL_MODEL, VANDEGEIJN_MODEL


class TestCostTable:
    def test_summa_row_first(self):
        rows = cost_table(1024, 64, 16, BINOMIAL_MODEL)
        assert rows[0].algorithm == "SUMMA"

    def test_hsumma_g1_gp_match_summa(self):
        """The structural identity of the paper's tables."""
        rows = cost_table(1024, 64, 16, VANDEGEIJN_MODEL, groups=[1, 64])
        summa = rows[0]
        for row in rows[1:]:
            assert row.latency_factor == pytest.approx(summa.latency_factor)
            assert row.bandwidth_factor == pytest.approx(summa.bandwidth_factor)

    def test_optimal_g_row_matches_eq12(self):
        """Table II's HSUMMA(G=sqrt p) row: latency factor
        (log2 p + 4(p^1/4 - 1)) n/b, bandwidth 8(1 - p^-1/4) n^2/sqrt p."""
        n, p, b = 65536, 16384, 256
        rows = cost_table(n, p, b, VANDEGEIJN_MODEL, groups=[128])
        hs = rows[1]
        assert hs.latency_factor == pytest.approx(
            (math.log2(p) + 4 * (p**0.25 - 1)) * n / b
        )
        assert hs.bandwidth_factor == pytest.approx(
            8 * (1 - p**-0.25) * n * n / math.sqrt(p)
        )

    def test_computation_same_for_all(self):
        rows = cost_table(1024, 64, 16, BINOMIAL_MODEL, groups=[1, 8, 64])
        assert len({r.computation for r in rows}) == 1

    def test_render_contains_rows(self):
        out = render_cost_table(1024, 64, 16, BINOMIAL_MODEL, groups=[8])
        assert "SUMMA" in out and "HSUMMA(G=8)" in out

    def test_table1_binomial_equal_factors(self):
        out = table1()
        assert "binomial" in out

    def test_table2_vdg_shows_win(self):
        out = table2()
        assert "vandegeijn" in out


class TestValidateModel:
    def test_bgp_wins(self):
        r = validate_model("bgp", 65536, 16384, 256, 3e-6, 1e-9)
        assert r.hsumma_wins
        assert r.extremum == "minimum"
        assert "interior minimum" in r.summary()

    def test_losing_configuration(self):
        # Huge blocks push the threshold past alpha/beta.
        r = validate_model("x", 2**22, 64, 4096, 1e-4, 1e-9)
        assert not r.hsumma_wins
        assert r.extremum == "maximum"
        assert "degenerates" in r.summary()

    def test_threshold_value(self):
        r = validate_model("g5k", 8192, 128, 64, 1e-4, 1e-9)
        assert r.threshold == pytest.approx(8192.0)
        assert r.alpha_over_beta == pytest.approx(1e5)

    def test_invalid_params(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            validate_model("x", 1024, 64, 16, 0, 1e-9)
