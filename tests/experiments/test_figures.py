"""Tests for the figure drivers (scaled-down variants for speed)."""

import pytest

from repro.experiments.figures import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    group_sweep,
    headline_ratios,
)
from repro.models.exascale import ExascaleScenario
from repro.platforms.grid5000 import grid5000_graphene


class TestGroupSweep:
    def test_endpoints_equal_summa(self):
        s = group_sweep(grid5000_graphene(16), 16, 512, 32, name="t")
        hs = s.column("hsumma_comm")
        su = s.column("summa_comm")[0]
        assert hs[0] == pytest.approx(su, rel=1e-9)
        assert hs[-1] == pytest.approx(su, rel=1e-9)

    def test_analytic_coster_kind(self):
        s = group_sweep(
            grid5000_graphene(16), 16, 512, 32,
            coster_kind="analytic", name="t",
        )
        assert len(s.x) == len(s.column("hsumma_comm"))

    def test_unknown_coster_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            group_sweep(grid5000_graphene(16), 16, 512, 32,
                        coster_kind="psychic", name="t")

    def test_des_fidelity_close_to_micro(self):
        """The full event simulation and the micro-costed step model
        agree closely on the switched cluster at small p."""
        plat = grid5000_graphene(16)
        micro = group_sweep(plat, 16, 512, 32, coster_kind="micro",
                            name="m")
        des = group_sweep(plat, 16, 512, 32, coster_kind="des", name="d")
        for a, b in zip(micro.column("hsumma_comm"),
                        des.column("hsumma_comm")):
            assert a == pytest.approx(b, rel=0.05)
        assert des.meta["fidelity"] == "des"

    def test_total_ge_comm(self):
        s = group_sweep(grid5000_graphene(16), 16, 512, 32, name="t")
        for total, comm in zip(s.column("hsumma_total"),
                               s.column("hsumma_comm")):
            assert total >= comm


class TestFigureDrivers:
    def test_fig5_scaled(self):
        s = fig5(p=16, n=1024, block=16)
        assert s.name == "fig5"
        # HSUMMA must win somewhere strictly inside the sweep.
        g, t = s.min_of("hsumma_comm")
        assert t <= s.column("summa_comm")[0]

    def test_fig6_scaled_larger_block_lower_latency(self):
        s_small = fig5(p=16, n=1024, block=16)
        s_large = fig6(p=16, n=1024, block=64)
        assert (
            s_large.column("summa_comm")[0] < s_small.column("summa_comm")[0]
        )

    def test_fig7_scaled(self):
        s = fig7(procs=(4, 16), n=512, block=32)
        assert s.x == [4, 16]
        assert all(h <= s2 + 1e-12 for h, s2 in zip(
            s.column("hsumma_comm"), s.column("summa_comm")))

    def test_fig8_scaled(self):
        s = fig8(p=64, n=2048, block=32)
        assert s.meta["platform"] == "bluegene-p"
        # Power-of-two group counts only (paper's x axis).
        assert all(g & (g - 1) == 0 for g in s.x)

    def test_fig9_scaled(self):
        s = fig9(procs=(16, 64), n=1024, block=16)
        assert s.x == [16, 64]
        assert len(s.column("best_groups")) == 2

    def test_fig10_full(self):
        """The real Figure 10 is pure closed form — run it at paper scale."""
        s = fig10()
        assert s.meta["optimal_G"] == 1024
        g, t = s.min_of("hsumma_comm")
        assert g == 1024
        assert t < s.column("summa_comm")[0]

    def test_fig10_custom_scenario(self):
        sc = ExascaleScenario(n=2**16, p=2**10, b=64)
        s = fig10(scenario=sc)
        assert s.meta["p"] == 2**10

    def test_headline_ratios_scaled(self):
        out = headline_ratios(procs=(64,), n=2048, block=32)
        assert 64 in out
        assert out[64]["comm_ratio"] >= 1.0
        assert out[64]["total_ratio"] >= 1.0 - 1e-9
