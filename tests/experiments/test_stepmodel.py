"""Tests for the step-synchronous executor and costers.

The crucial property: on homogeneous networks the step model equals the
full discrete-event simulation *exactly* — so everything it predicts at
16384 ranks is backed by the executable semantics at small scale.
"""

import pytest

from repro.core.hsumma import HSummaConfig, run_hsumma
from repro.core.summa import SummaConfig, run_summa
from repro.errors import ConfigurationError
from repro.experiments.stepmodel import (
    AnalyticCoster,
    MicroDesCoster,
    TopologyCoster,
    hsumma_step_model,
    summa_step_model,
)
from repro.mpi.comm import CollectiveOptions
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.network.torus import Torus3D
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
GAMMA = 1e-10


class TestCrossValidationHomogeneous:
    @pytest.mark.parametrize("bcast", ["binomial", "vandegeijn"])
    def test_summa_exact(self, bcast):
        n = 256
        cfg = SummaConfig(m=n, l=n, n=n, s=4, t=4, block=16)
        _, sim = run_summa(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), block=16, params=PARAMS, gamma=GAMMA,
            options=CollectiveOptions(bcast=bcast),
        )
        rep = summa_step_model(cfg, AnalyticCoster(PARAMS, bcast), GAMMA)
        assert rep.total_time == pytest.approx(sim.total_time)
        assert rep.comm_time == pytest.approx(sim.comm_time)
        assert rep.compute_time == pytest.approx(sim.compute_time)

    @pytest.mark.parametrize("bcast", ["binomial", "vandegeijn"])
    @pytest.mark.parametrize("groups", [(1, 1), (2, 2), (4, 2), (4, 4)])
    def test_hsumma_exact(self, bcast, groups):
        n = 256
        I, J = groups
        cfg = HSummaConfig(m=n, l=n, n=n, s=4, t=4, I=I, J=J,
                           outer_block=16, inner_block=16)
        _, sim = run_hsumma(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), groups=groups, outer_block=16,
            params=PARAMS, gamma=GAMMA,
            options=CollectiveOptions(bcast=bcast),
        )
        rep = hsumma_step_model(cfg, AnalyticCoster(PARAMS, bcast), GAMMA)
        assert rep.total_time == pytest.approx(sim.total_time)
        assert rep.comm_time == pytest.approx(sim.comm_time)

    def test_hsumma_b_ne_B_exact(self):
        n = 256
        cfg = HSummaConfig(m=n, l=n, n=n, s=4, t=4, I=2, J=2,
                           outer_block=32, inner_block=8)
        _, sim = run_hsumma(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), groups=(2, 2), outer_block=32, inner_block=8,
            params=PARAMS, gamma=GAMMA,
        )
        rep = hsumma_step_model(cfg, AnalyticCoster(PARAMS, "binomial"), GAMMA)
        assert rep.total_time == pytest.approx(sim.total_time)

    def test_micro_des_equals_analytic_on_homogeneous(self):
        cfg = SummaConfig(m=128, l=128, n=128, s=4, t=4, block=8)
        net = HomogeneousNetwork(16, PARAMS)
        a = summa_step_model(cfg, AnalyticCoster(PARAMS, "vandegeijn"), GAMMA)
        m = summa_step_model(cfg, MicroDesCoster(net, "vandegeijn"), GAMMA)
        assert m.total_time == pytest.approx(a.total_time)

    def test_topology_coster_equals_analytic_on_homogeneous(self):
        cfg = SummaConfig(m=128, l=128, n=128, s=4, t=4, block=8)
        net = HomogeneousNetwork(16, PARAMS)
        a = summa_step_model(cfg, AnalyticCoster(PARAMS, "binomial"), GAMMA)
        t = summa_step_model(cfg, TopologyCoster(net, "binomial"), GAMMA)
        assert t.total_time == pytest.approx(a.total_time)


class TestCrossValidationTopology:
    def test_switched_cluster_step_model_close_to_des(self):
        """On a non-uniform (switched) topology the step model is an
        approximation; it must stay within a few percent of the full
        event simulation at Grid5000-figure scale."""
        from repro.core.summa import run_summa
        from repro.mpi.comm import CollectiveOptions
        from repro.platforms.grid5000 import grid5000_graphene

        platform = grid5000_graphene(16)
        net = platform.network(16)
        n = 512
        cfg = SummaConfig(m=n, l=n, n=n, s=4, t=4, block=32)
        _, sim = run_summa(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(4, 4), block=32, network=net,
            options=CollectiveOptions(bcast="vandegeijn"),
        )
        rep = summa_step_model(
            cfg, MicroDesCoster(platform.network(16), "vandegeijn")
        )
        assert rep.comm_time == pytest.approx(sim.comm_time, rel=0.05)


class TestCosters:
    def test_single_participant_free(self):
        for coster in (
            AnalyticCoster(PARAMS),
            MicroDesCoster(HomogeneousNetwork(4, PARAMS)),
            TopologyCoster(HomogeneousNetwork(4, PARAMS)),
        ):
            assert coster.bcast_time((3,), 0, 1 << 20) == 0.0

    def test_micro_des_memoises(self):
        net = HomogeneousNetwork(8, PARAMS)
        coster = MicroDesCoster(net, "binomial")
        t1 = coster.bcast_time((0, 1, 2, 3), 0, 4096)
        assert len(coster._memo) == 1
        t2 = coster.bcast_time((4, 5, 6, 7), 0, 4096)  # same size: memo hit
        assert len(coster._memo) == 1
        assert t1 == t2

    def test_micro_des_torus_position_sensitive(self):
        net = Torus3D((8, 8, 1), HockneyParams(3e-6, 1e-9), alpha_hop=1e-6)
        coster = MicroDesCoster(net, "binomial")
        # A compact row vs a scattered diagonal.
        compact = coster.bcast_time(tuple(range(8)), 0, 4096)
        spread = coster.bcast_time(tuple(9 * i for i in range(7)), 0, 4096)
        assert spread > compact

    def test_topology_coster_torus_sensitivity(self):
        net = Torus3D((8, 8, 1), HockneyParams(3e-6, 1e-9), alpha_hop=1e-6)
        coster = TopologyCoster(net, "binomial")
        compact = coster.bcast_time(tuple(range(8)), 0, 4096)
        spread = coster.bcast_time(tuple(9 * i for i in range(7)), 0, 4096)
        assert spread > compact

    def test_report_validation(self):
        from repro.experiments.stepmodel import StepModelReport

        with pytest.raises(ConfigurationError):
            StepModelReport(total_time=-1, comm_time=0, compute_time=0, nsteps=1)


class TestTopologyPairSampling:
    """Regression tests for ``TopologyCoster._pairs``.

    The old sampler drew ``(i * stride) % n`` index pairs, which both
    repeated pairs (wasting samples) and biased the estimate toward
    low-index participants.  The fixed sampler must return *distinct*
    ordered pairs spread over the whole pair lattice.
    """

    def _coster(self, nranks=4096):
        return TopologyCoster(HomogeneousNetwork(nranks, PARAMS))

    def test_small_groups_use_all_ordered_pairs(self):
        coster = self._coster()
        participants = tuple(range(10, 20))  # 10*9 = 90 <= 512 cap
        pairs = coster._pairs(participants)
        assert len(pairs) == 10 * 9
        assert len(set(pairs)) == len(pairs)
        assert set(pairs) == {
            (a, b) for a in participants for b in participants if a != b
        }

    def test_large_groups_sample_distinct_pairs(self):
        coster = self._coster()
        participants = tuple(range(0, 4096, 2))  # 2048 ranks, ~4.2M pairs
        pairs = coster._pairs(participants)
        assert len(pairs) == TopologyCoster.MAX_PAIR_SAMPLES
        assert len(set(pairs)) == len(pairs), "sampler returned duplicates"
        members = set(participants)
        assert all(a in members and b in members and a != b for a, b in pairs)

    def test_large_groups_cover_senders_evenly(self):
        # The old sampler's senders clustered at low indices; the fixed
        # one walks the lattice uniformly, so both halves of the group
        # must appear as senders in roughly equal measure.
        coster = self._coster()
        participants = tuple(range(1024))
        pairs = coster._pairs(participants)
        mid = participants[len(participants) // 2]
        low = sum(1 for a, _ in pairs if a < mid)
        high = sum(1 for a, _ in pairs if a >= mid)
        assert abs(low - high) <= TopologyCoster.MAX_PAIR_SAMPLES * 0.1

    def test_sampling_is_deterministic(self):
        coster = self._coster()
        participants = tuple(range(0, 3000, 3))
        assert coster._pairs(participants) == coster._pairs(participants)

    def test_just_over_cap_still_distinct(self):
        # Smallest group where sampling kicks in: n*(n-1) barely above
        # the cap exercises the strictly-increasing-q argument hardest.
        coster = self._coster()
        n = 24  # 24*23 = 552 > 512
        participants = tuple(range(100, 100 + n))
        pairs = coster._pairs(participants)
        assert len(pairs) == TopologyCoster.MAX_PAIR_SAMPLES
        assert len(set(pairs)) == len(pairs)
