"""API-stability tests: the documented public surface exists and works."""

import numpy as np


class TestTopLevelExports:
    def test_documented_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The README quickstart must keep working verbatim."""
        from repro import multiply, HockneyParams
        from repro.mpi.comm import CollectiveOptions

        A = np.random.default_rng(0).standard_normal((64, 64))
        B = np.random.default_rng(1).standard_normal((64, 64))
        result = multiply(
            A, B,
            nprocs=16,
            algorithm="hsumma",
            block=4,
            groups=4,
            params=HockneyParams(alpha=1e-4, beta=1e-9),
            options=CollectiveOptions(bcast="vandegeijn"),
            gamma=1e-9,
        )
        assert np.allclose(result.C, A @ B)
        assert result.total_time > 0

    def test_platform_presets(self):
        from repro import bluegene_p, exascale_2012, grid5000_graphene

        assert grid5000_graphene().name == "grid5000-graphene"
        assert bluegene_p().name == "bluegene-p"
        assert exascale_2012().name == "exascale-2012"

    def test_run_spmd_surface(self):
        from repro import run_spmd

        def prog(ctx):
            out = yield from ctx.world.allgather(ctx.rank)
            return out

        res = run_spmd(prog, 3)
        assert res.return_values[0] == [0, 1, 2]

    def test_factorize_surface(self):
        from repro import factorize, KERNELS

        assert set(KERNELS) == {"lu", "qr"}
        rng = np.random.default_rng(2)
        A = rng.standard_normal((16, 16)) + 16 * np.eye(16)
        res = factorize(A, kernel="lu", grid=(2, 2), block=4)
        L, U = res.factors
        assert np.allclose(L @ U, A)

    def test_phantom_surface(self):
        from repro import PhantomArray, multiply

        r = multiply(PhantomArray((64, 64)), PhantomArray((64, 64)),
                     nprocs=16, algorithm="summa", block=4)
        assert isinstance(r.C, PhantomArray)

    def test_error_hierarchy(self):
        from repro import ReproError
        from repro.errors import (
            CommunicatorError,
            ConfigurationError,
            DataMismatchError,
            DeadlockError,
            ModelError,
            SimulationError,
            TopologyError,
        )

        for exc in (CommunicatorError, ConfigurationError, DataMismatchError,
                    DeadlockError, ModelError, SimulationError, TopologyError):
            assert issubclass(exc, ReproError)

    def test_tune_surface(self):
        from repro import tune_group_count
        from repro.mpi.comm import CollectiveOptions
        from repro.network.model import HockneyParams

        report = tune_group_count(
            256, (4, 4), 8,
            params=HockneyParams(1e-4, 1e-9),
            options=CollectiveOptions(bcast="vandegeijn"),
        )
        assert report.best_groups in report.times
