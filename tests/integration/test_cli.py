"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "11"])


class TestCommands:
    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "grid5000-graphene" in out
        assert "bluegene-p" in out
        assert "exascale-2012" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "binomial" in out and "vandegeijn" in out

    def test_multiply(self, capsys):
        assert main([
            "multiply", "--n", "256", "--procs", "16", "--block", "16",
            "--algorithm", "hsumma", "--groups", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "total" in out and "comm" in out

    def test_multiply_bad_config_returns_2(self, capsys):
        # Block does not divide the tile: a ReproError, exit code 2.
        rc = main([
            "multiply", "--n", "100", "--procs", "16", "--block", "7",
            "--algorithm", "summa",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_tune(self, capsys):
        assert main(["tune", "--n", "256", "--procs", "16",
                     "--block", "16"]) == 0
        out = capsys.readouterr().out
        assert "best" in out

    def test_lu(self, capsys):
        assert main(["lu", "--n", "256", "--procs", "16", "--block", "16",
                     "--group-rows", "2", "--group-cols", "2"]) == 0
        out = capsys.readouterr().out
        assert "HLU" in out

    def test_lu_flat(self, capsys):
        assert main(["lu", "--n", "256", "--procs", "16",
                     "--block", "16"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("LU")

    def test_timeline(self, capsys):
        assert main(["timeline", "--n", "64", "--procs", "4",
                     "--block", "8", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "rank 0" in out
        assert "s=send" in out

    def test_timeline_overlap(self, capsys):
        assert main(["timeline", "--n", "64", "--procs", "4",
                     "--block", "8", "--overlap"]) == 0
        assert "overlapped" in capsys.readouterr().out

    def test_trace_hsumma_acceptance(self, capsys, tmp_path):
        """The issue's acceptance run: valid Chrome JSON, and the
        per-phase rollup partitions the makespan to 1e-9."""
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "--algo", "hsumma", "-p", "16", "-n", "1024",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert all(ev["ph"] in {"M", "X", "s", "f"}
                   for ev in doc["traceEvents"])
        text = capsys.readouterr().out
        assert "bcast.inter" in text and "bcast.intra" in text
        # Re-run the same configuration and check the 1e-9 bound.
        from repro.core.hsumma import run_hsumma
        from repro.metrics import phase_rollup
        from repro.payloads import PhantomArray

        A, B = PhantomArray((1024, 1024)), PhantomArray((1024, 1024))
        _, sim = run_hsumma(A, B, grid=(4, 4), groups=4, outer_block=64,
                            gamma=5e-9, trace=True)
        breakdown = phase_rollup(sim)
        assert abs(breakdown.attributed_total - sim.total_time) <= 1e-9
        assert doc["otherData"]["total_time_s"] == sim.total_time

    def test_trace_summa_with_extras(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        csv = tmp_path / "spans.csv"
        assert main(["trace", "--algo", "summa", "-p", "4", "-n", "256",
                     "--out", str(out), "--csv", str(csv),
                     "--timeline", "--critical-path"]) == 0
        text = capsys.readouterr().out
        assert "bcast.row" in text
        assert "critical path" in text
        assert csv.read_text().startswith("rank,path,name,")

    def test_figure_10_csv(self, capsys):
        assert main(["figure", "10", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("groups,")

    def test_figure_10_table(self, capsys):
        assert main(["figure", "10"]) == 0
        assert "hsumma_comm" in capsys.readouterr().out
