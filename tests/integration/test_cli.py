"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "11"])


class TestCommands:
    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "grid5000-graphene" in out
        assert "bluegene-p" in out
        assert "exascale-2012" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "binomial" in out and "vandegeijn" in out

    def test_multiply(self, capsys):
        assert main([
            "multiply", "--n", "256", "--procs", "16", "--block", "16",
            "--algorithm", "hsumma", "--groups", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "total" in out and "comm" in out

    def test_multiply_bad_config_returns_2(self, capsys):
        # Block does not divide the tile: a ReproError, exit code 2.
        rc = main([
            "multiply", "--n", "100", "--procs", "16", "--block", "7",
            "--algorithm", "summa",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_tune(self, capsys):
        assert main(["tune", "--n", "256", "--procs", "16",
                     "--block", "16"]) == 0
        out = capsys.readouterr().out
        assert "best" in out

    def test_lu(self, capsys):
        assert main(["lu", "--n", "256", "--procs", "16", "--block", "16",
                     "--group-rows", "2", "--group-cols", "2"]) == 0
        out = capsys.readouterr().out
        assert "HLU" in out

    def test_lu_flat(self, capsys):
        assert main(["lu", "--n", "256", "--procs", "16",
                     "--block", "16"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("LU")

    def test_timeline(self, capsys):
        assert main(["timeline", "--n", "64", "--procs", "4",
                     "--block", "8", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "rank 0" in out
        assert "s=send" in out

    def test_timeline_overlap(self, capsys):
        assert main(["timeline", "--n", "64", "--procs", "4",
                     "--block", "8", "--overlap"]) == 0
        assert "overlapped" in capsys.readouterr().out

    def test_figure_10_csv(self, capsys):
        assert main(["figure", "10", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("groups,")

    def test_figure_10_table(self, capsys):
        assert main(["figure", "10"]) == 0
        assert "hsumma_comm" in capsys.readouterr().out
