"""Integration tests: all algorithms agree on the same product and the
simulated timings respect the relationships the paper relies on."""

import numpy as np

from repro.blocks.verify import max_abs_error, relative_error
from repro.core.api import multiply
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")


class TestAllAlgorithmsAgree:
    def test_same_product_everywhere(self, rng):
        n = 24
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        ref = A @ B
        results = {
            "serial": multiply(A, B, algorithm="serial"),
            "summa": multiply(A, B, grid=(2, 2), algorithm="summa",
                              block=4, params=PARAMS),
            "hsumma": multiply(A, B, grid=(2, 2), algorithm="hsumma",
                               block=4, groups=2, params=PARAMS),
            "cannon": multiply(A, B, grid=(2, 2), algorithm="cannon",
                               params=PARAMS),
            "fox": multiply(A, B, grid=(2, 2), algorithm="fox",
                            params=PARAMS),
            "3d": multiply(A, B, nprocs=8, algorithm="3d", params=PARAMS),
            "2.5d": multiply(A, B, nprocs=8, algorithm="2.5d",
                             replication=2, params=PARAMS),
        }
        for name, result in results.items():
            assert max_abs_error(result.C, ref) < 1e-10, name

    def test_ill_conditioned_still_accurate(self, rng):
        """Relative error stays at machine precision even for badly
        scaled inputs (the block algorithms only reorder the sum)."""
        n = 16
        A = rng.standard_normal((n, n)) * np.logspace(-8, 8, n)
        B = rng.standard_normal((n, n))
        ref = A @ B
        r = multiply(A, B, grid=(2, 2), algorithm="hsumma", block=4,
                     groups=2, params=PARAMS)
        assert relative_error(r.C, ref) < 1e-12


class TestPaperRelationships:
    def test_hsumma_never_worse_than_summa_at_best_g(self):
        """The paper's worst-case guarantee, measured end to end."""
        n = 512
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        summa = multiply(A, B, grid=(4, 4), algorithm="summa",
                         block=32, params=PARAMS, options=VDG)
        best = min(
            multiply(A, B, grid=(4, 4), algorithm="hsumma", block=32,
                     groups=G, params=PARAMS, options=VDG).comm_time
            for G in (1, 2, 4, 8, 16)
        )
        assert best <= summa.comm_time + 1e-12

    def test_comm_fraction_grows_with_p(self):
        """The paper's motivation: communication dominates as p grows
        for a fixed problem."""
        n = 256
        gamma = 1e-9
        fractions = []
        for grid in ((2, 2), (4, 4), (8, 8)):
            r = multiply(PhantomArray((n, n)), PhantomArray((n, n)),
                         grid=grid, algorithm="summa", block=16,
                         params=PARAMS, gamma=gamma, options=VDG)
            fractions.append(r.comm_time / r.total_time)
        assert fractions[0] < fractions[1] < fractions[2]

    def test_deterministic_repeatability(self):
        """Two identical simulations give bit-identical virtual times."""
        n = 128
        args = dict(grid=(4, 4), algorithm="hsumma", block=8, groups=4,
                    params=PARAMS, options=VDG)
        r1 = multiply(PhantomArray((n, n)), PhantomArray((n, n)), **args)
        r2 = multiply(PhantomArray((n, n)), PhantomArray((n, n)), **args)
        assert r1.total_time == r2.total_time
        assert r1.comm_time == r2.comm_time


class TestTuningIntegration:
    def test_tuned_g_is_actually_best(self):
        """The auto-tuner's pick must match an exhaustive full-run sweep."""
        from repro.core.tuning import tune_group_count

        n, grid, block = 512, (4, 4), 32
        report = tune_group_count(n, grid, block, params=PARAMS,
                                  options=VDG, metric="comm")
        full = {}
        for G in report.times:
            r = multiply(PhantomArray((n, n)), PhantomArray((n, n)),
                         grid=grid, algorithm="hsumma", block=block,
                         groups=G, params=PARAMS, options=VDG)
            full[G] = r.comm_time
        best_full = min(full, key=lambda g: (full[g], g))
        assert report.best_groups == best_full
