"""Smoke tests for the runnable examples (the fast ones).

Each example is a script; these tests import and drive their ``main``
(or the fast sub-functions) so a broken example fails CI rather than a
user's first contact with the project.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        mod = _load("quickstart")
        mod.main()
        out = capsys.readouterr().out
        assert "max abs error" in out
        assert "HSUMMA" in out

    def test_exascale_forecast(self, capsys):
        mod = _load("exascale_forecast")
        mod.main()
        out = capsys.readouterr().out
        assert "G=1024" in out
        assert "threshold" in out

    def test_factorization_demo_verify(self, capsys):
        mod = _load("factorization_demo")
        mod.verify()
        out = capsys.readouterr().out
        assert "LU:" in out and "QR:" in out

    def test_heterogeneous_cluster(self, capsys):
        mod = _load("heterogeneous_cluster")
        mod.main()
        out = capsys.readouterr().out
        assert "load balancing buys" in out

    def test_trace_demo(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "demo.json"
        mod = _load("trace_demo")
        mod.main(str(out_file))
        out = capsys.readouterr().out
        assert "bcast.inter" in out
        assert "critical path" in out
        assert "x reduction" in out
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]

    @pytest.mark.parametrize("name", [
        "quickstart",
        "optimal_groups",
        "broadcast_showdown",
        "bluegene_reproduction",
        "exascale_forecast",
        "factorization_demo",
        "heterogeneous_cluster",
        "trace_demo",
    ])
    def test_all_examples_importable(self, name):
        """Every example parses and imports (without running main)."""
        path = EXAMPLES / f"{name}.py"
        source = path.read_text()
        compile(source, str(path), "exec")
