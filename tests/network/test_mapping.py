"""Unit tests for repro.network.mapping."""

import pytest

from repro.errors import TopologyError
from repro.network.mapping import (
    RankMapping,
    block_mapping,
    identity_mapping,
    round_robin_mapping,
    shuffled_mapping,
)


class TestRankMapping:
    def test_node_lookup(self):
        m = RankMapping([0, 0, 1, 1], 2)
        assert m.node(0) == 0
        assert m.node(3) == 1

    def test_colocated(self):
        m = RankMapping([0, 0, 1, 1], 2)
        assert m.colocated(0, 1)
        assert not m.colocated(1, 2)

    def test_ranks_on(self):
        m = RankMapping([0, 1, 0, 1], 2)
        assert m.ranks_on(0) == [0, 2]
        assert m.ranks_on(1) == [1, 3]

    def test_out_of_range_rank(self):
        m = RankMapping([0, 1], 2)
        with pytest.raises(TopologyError):
            m.node(5)

    def test_node_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            RankMapping([0, 2], 2)

    def test_zero_nodes_rejected(self):
        with pytest.raises(TopologyError):
            RankMapping([], 0)


class TestFactories:
    def test_identity(self):
        m = identity_mapping(4)
        assert [m.node(r) for r in range(4)] == [0, 1, 2, 3]

    def test_block(self):
        m = block_mapping(8, 4)
        assert [m.node(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert m.nnodes == 2

    def test_block_uneven(self):
        m = block_mapping(5, 2)
        assert m.nnodes == 3
        assert m.node(4) == 2

    def test_block_rejects_zero(self):
        with pytest.raises(TopologyError):
            block_mapping(4, 0)

    def test_round_robin(self):
        m = round_robin_mapping(6, 3)
        assert [m.node(r) for r in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_round_robin_rejects_zero(self):
        with pytest.raises(TopologyError):
            round_robin_mapping(4, 0)

    def test_shuffled_deterministic(self):
        a = shuffled_mapping(16, 4, seed=7)
        b = shuffled_mapping(16, 4, seed=7)
        assert [a.node(r) for r in range(16)] == [b.node(r) for r in range(16)]

    def test_shuffled_differs_by_seed(self):
        a = shuffled_mapping(16, 4, seed=7)
        b = shuffled_mapping(16, 4, seed=8)
        assert [a.node(r) for r in range(16)] != [b.node(r) for r in range(16)]

    def test_shuffled_preserves_occupancy(self):
        m = shuffled_mapping(16, 4, seed=3)
        counts = [len(m.ranks_on(node)) for node in range(m.nnodes)]
        assert counts == [4, 4, 4, 4]
