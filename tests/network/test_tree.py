"""Unit tests for repro.network.tree (switched cluster)."""

import pytest

from repro.errors import TopologyError
from repro.network.model import HockneyParams
from repro.network.tree import SwitchedCluster

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestSwitchedCluster:
    def test_same_switch_one_traversal(self):
        net = SwitchedCluster(8, 4, PARAMS)
        assert net.hops(0, 3) == 1

    def test_cross_switch_two_traversals(self):
        net = SwitchedCluster(8, 4, PARAMS)
        assert net.hops(0, 4) == 2

    def test_cross_switch_costs_more(self):
        net = SwitchedCluster(8, 4, PARAMS)
        assert net.transfer_time(0, 4, 1000) > net.transfer_time(0, 3, 1000)

    def test_extra_cost_is_switch_hop_alpha(self):
        net = SwitchedCluster(8, 4, PARAMS, switch_hop_alpha=5e-5)
        near = net.transfer_time(0, 1, 1000)
        far = net.transfer_time(0, 7, 1000)
        assert far - near == pytest.approx(5e-5)

    def test_intra_node(self):
        net = SwitchedCluster(2, 2, PARAMS, ranks_per_node=2)
        assert net.hops(0, 1) == 0
        assert net.transfer_time(0, 1, 1000) < net.transfer_time(0, 2, 1000)

    def test_switch_of(self):
        net = SwitchedCluster(10, 3, PARAMS)
        assert net.switch_of(0) == 0
        assert net.switch_of(2) == 0
        assert net.switch_of(3) == 1
        assert net.switch_of(9) == 3

    def test_switch_of_bounds(self):
        net = SwitchedCluster(4, 2, PARAMS)
        with pytest.raises(TopologyError):
            net.switch_of(4)

    def test_links_share_uplink(self):
        net = SwitchedCluster(8, 4, PARAMS)
        links_a = set(net.links(0, 4))
        links_b = set(net.links(1, 5))
        # Both cross from switch 0 to switch 1: shared uplinks.
        shared = links_a & links_b
        assert ("uplink", 0, "up") in shared

    def test_same_switch_no_uplink(self):
        net = SwitchedCluster(8, 4, PARAMS)
        assert not any(c[0] == "uplink" for c in net.links(0, 3))

    def test_self_free(self):
        net = SwitchedCluster(4, 2, PARAMS)
        assert net.transfer_time(1, 1, 5) == 0.0

    def test_bad_construction(self):
        with pytest.raises(TopologyError):
            SwitchedCluster(0, 4, PARAMS)
        with pytest.raises(TopologyError):
            SwitchedCluster(4, 0, PARAMS)
        with pytest.raises(TopologyError):
            SwitchedCluster(4, 2, PARAMS, switch_hop_alpha=-1)
