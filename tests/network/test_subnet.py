"""Unit tests for repro.network.subnet."""

import pytest

from repro.errors import TopologyError
from repro.network.model import HockneyParams
from repro.network.subnet import SubNetwork
from repro.network.torus import Torus3D

PARAMS = HockneyParams(alpha=3e-6, beta=1e-9)


class TestSubNetwork:
    def test_translates_costs(self):
        base = Torus3D((4, 4, 1), PARAMS)
        sub = SubNetwork(base, [0, 5, 10, 15])
        assert sub.transfer_time(0, 1, 100) == pytest.approx(
            base.transfer_time(0, 5, 100)
        )

    def test_translates_hops_and_links(self):
        base = Torus3D((4, 4, 1), PARAMS)
        sub = SubNetwork(base, [2, 14])
        assert sub.hops(0, 1) == base.hops(2, 14)
        assert sub.links(0, 1) == base.links(2, 14)

    def test_nranks(self):
        base = Torus3D((2, 2, 2), PARAMS)
        sub = SubNetwork(base, [0, 3, 7])
        assert sub.nranks == 3

    def test_duplicate_ranks_rejected(self):
        base = Torus3D((2, 2, 2), PARAMS)
        with pytest.raises(TopologyError):
            SubNetwork(base, [0, 0, 1])

    def test_out_of_range_rejected(self):
        base = Torus3D((2, 2, 2), PARAMS)
        with pytest.raises(TopologyError):
            SubNetwork(base, [0, 99])

    def test_index_bounds_enforced(self):
        base = Torus3D((2, 2, 2), PARAMS)
        sub = SubNetwork(base, [0, 1])
        with pytest.raises(TopologyError):
            sub.transfer_time(0, 2, 10)
