"""Tests for the piecewise (multi-regime) cost model."""

import pytest

from repro.errors import TopologyError
from repro.network.model import HockneyParams
from repro.network.piecewise import PiecewiseHockney, PiecewiseNetwork


def _three_regime():
    return PiecewiseHockney([
        (1024.0, HockneyParams(1e-6, 1e-9)),
        (1048576.0, HockneyParams(1e-5, 1e-9)),
        (float("inf"), HockneyParams(3e-5, 1e-9)),
    ])


class TestPiecewiseHockney:
    def test_regime_selection(self):
        model = _three_regime()
        assert model.params_for(100).alpha == pytest.approx(1e-6)
        assert model.params_for(1024).alpha == pytest.approx(1e-6)
        assert model.params_for(1025).alpha == pytest.approx(1e-5)
        assert model.params_for(1 << 30).alpha == pytest.approx(3e-5)

    def test_transfer_time(self):
        model = _three_regime()
        assert model.transfer_time(100) == pytest.approx(1e-6 + 100e-9)

    def test_jump_up_allowed(self):
        # Eager -> rendezvous latency jump is physical.
        model = _three_regime()
        t_before = model.transfer_time(1024)
        t_after = model.transfer_time(1025)
        assert t_after > t_before

    def test_drop_rejected(self):
        with pytest.raises(TopologyError, match="monotone"):
            PiecewiseHockney([
                (1024.0, HockneyParams(1e-4, 1e-9)),
                (float("inf"), HockneyParams(1e-7, 1e-10)),
            ])

    def test_bounds_must_increase(self):
        with pytest.raises(TopologyError):
            PiecewiseHockney([
                (2048.0, HockneyParams(1e-6, 1e-9)),
                (1024.0, HockneyParams(1e-5, 1e-9)),
                (float("inf"), HockneyParams(1e-4, 1e-9)),
            ])

    def test_last_bound_must_be_inf(self):
        with pytest.raises(TopologyError):
            PiecewiseHockney([(1024.0, HockneyParams(1e-6, 1e-9))])

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            PiecewiseHockney([])

    def test_negative_size_rejected(self):
        with pytest.raises(TopologyError):
            _three_regime().params_for(-1)

    def test_mpi_like_factory(self):
        model = PiecewiseHockney.mpi_like(1e-5, 1e-9)
        assert model.params_for(100).alpha == pytest.approx(0.5e-5)
        assert model.params_for(1 << 16).alpha == pytest.approx(1e-5)
        assert model.params_for(1 << 24).alpha == pytest.approx(3e-5)


class TestPiecewiseNetwork:
    def test_in_engine(self):
        """A SUMMA run over the piecewise network completes and costs
        more than the single-regime mid curve for big messages."""
        from repro.core.summa import run_summa
        from repro.payloads import PhantomArray

        model = PiecewiseHockney.mpi_like(1e-5, 1e-9, large_bytes=1 << 14)
        net = PiecewiseNetwork(16, model)
        C, sim = run_summa(
            PhantomArray((128, 128)), PhantomArray((128, 128)),
            grid=(4, 4), block=16, network=net,
        )
        assert sim.total_time > 0

    def test_self_free(self):
        net = PiecewiseNetwork(4, _three_regime())
        assert net.transfer_time(1, 1, 100) == 0.0

    def test_calibration_per_regime(self):
        """Fitting only small (or only large) samples recovers that
        regime's parameters."""
        from repro.models.calibration import fit_hockney

        net = PiecewiseNetwork(2, _three_regime())
        small = [0, 256, 512, 1024]
        fit = fit_hockney(small, [net.transfer_time(0, 1, s) for s in small])
        assert fit.params.alpha == pytest.approx(1e-6)
