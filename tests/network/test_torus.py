"""Unit tests for repro.network.torus (BlueGene/P model)."""

import pytest

from repro.errors import TopologyError
from repro.network.model import HockneyParams
from repro.network.torus import Torus3D, TorusCoord, _signed_hop

PARAMS = HockneyParams(alpha=3e-6, beta=1e-9)


class TestSignedHop:
    def test_same(self):
        assert _signed_hop(3, 3, 8) == (0, 0)

    def test_forward(self):
        assert _signed_hop(0, 2, 8) == (2, 1)

    def test_backward_shorter(self):
        assert _signed_hop(0, 7, 8) == (1, -1)

    def test_tie_goes_forward(self):
        assert _signed_hop(0, 4, 8) == (4, 1)

    def test_ring_of_one(self):
        assert _signed_hop(0, 0, 1) == (0, 0)


class TestGeometry:
    def test_coord_roundtrip(self):
        torus = Torus3D((4, 3, 2), PARAMS)
        for node in range(4 * 3 * 2):
            assert torus.node_index(torus.coord(node)) == node

    def test_coord_order_x_fastest(self):
        torus = Torus3D((4, 3, 2), PARAMS)
        assert torus.coord(0) == TorusCoord(0, 0, 0)
        assert torus.coord(1) == TorusCoord(1, 0, 0)
        assert torus.coord(4) == TorusCoord(0, 1, 0)
        assert torus.coord(12) == TorusCoord(0, 0, 1)

    def test_coord_out_of_range(self):
        torus = Torus3D((2, 2, 2), PARAMS)
        with pytest.raises(TopologyError):
            torus.coord(8)

    def test_bad_dims(self):
        with pytest.raises(TopologyError):
            Torus3D((0, 2, 2), PARAMS)


class TestHops:
    def test_neighbor_one_hop(self):
        torus = Torus3D((4, 4, 4), PARAMS)
        assert torus.hops(0, 1) == 1

    def test_wraparound(self):
        torus = Torus3D((4, 4, 4), PARAMS)
        # x=0 to x=3 is one hop backwards around the ring.
        assert torus.hops(0, 3) == 1

    def test_manhattan_with_wrap(self):
        torus = Torus3D((4, 4, 4), PARAMS)
        # (0,0,0) -> (2,1,3): 2 + 1 + 1 = 4 hops.
        dst = torus.node_index(TorusCoord(2, 1, 3))
        assert torus.hops(0, dst) == 4

    def test_colocated_vn_mode(self):
        torus = Torus3D((2, 2, 2), PARAMS, ranks_per_node=4)
        assert torus.nranks == 32
        assert torus.hops(0, 3) == 0  # same node
        assert torus.hops(0, 4) >= 1  # next node

    def test_symmetric(self):
        torus = Torus3D((3, 4, 5), PARAMS)
        for a, b in [(0, 17), (5, 40), (2, 59)]:
            assert torus.hops(a, b) == torus.hops(b, a)


class TestTransferTime:
    def test_per_hop_latency(self):
        torus = Torus3D((8, 1, 1), PARAMS, alpha_hop=1e-7)
        t1 = torus.transfer_time(0, 1, 0)
        t3 = torus.transfer_time(0, 3, 0)
        assert t3 - t1 == pytest.approx(2 * 1e-7)

    def test_bandwidth_distance_independent(self):
        torus = Torus3D((8, 1, 1), PARAMS, alpha_hop=0.0)
        t1 = torus.transfer_time(0, 1, 10_000)
        t3 = torus.transfer_time(0, 3, 10_000)
        assert t1 == pytest.approx(t3)

    def test_intra_node_cheaper_than_link(self):
        torus = Torus3D((2, 2, 2), PARAMS, ranks_per_node=4)
        assert torus.transfer_time(0, 1, 4096) < torus.transfer_time(0, 4, 4096)

    def test_self_free(self):
        torus = Torus3D((2, 2, 2), PARAMS)
        assert torus.transfer_time(3, 3, 999) == 0.0

    def test_negative_alpha_hop_rejected(self):
        with pytest.raises(TopologyError):
            Torus3D((2, 2, 2), PARAMS, alpha_hop=-1.0)


class TestRouting:
    def test_route_length_equals_hops(self):
        torus = Torus3D((4, 4, 4), PARAMS)
        for a, b in [(0, 1), (0, 63), (7, 42), (13, 13)]:
            assert len(torus.links(a, b)) == torus.hops(a, b)

    def test_dimension_order(self):
        torus = Torus3D((4, 4, 4), PARAMS)
        dst = torus.node_index(TorusCoord(1, 1, 0))
        claims = torus.links(0, dst)
        dims = [c[2] for c in claims]
        assert dims == sorted(dims)  # X before Y before Z

    def test_intra_node_no_links(self):
        torus = Torus3D((2, 2, 2), PARAMS, ranks_per_node=2)
        assert torus.links(0, 1) == ()

    def test_routes_are_physical_links(self):
        torus = Torus3D((4, 2, 2), PARAMS)
        for claim in torus.links(0, 9):
            tag, node, dim, direction = claim
            assert tag == "torus"
            assert 0 <= node < 16
            assert dim in (0, 1, 2)
            assert direction in (-1, 1)
