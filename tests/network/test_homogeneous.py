"""Unit tests for repro.network.homogeneous."""

import pytest

from repro.errors import TopologyError
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.mapping import block_mapping
from repro.network.model import HockneyParams


class TestHomogeneousNetwork:
    def test_all_pairs_equal(self):
        net = HomogeneousNetwork(6, HockneyParams(1e-5, 1e-9))
        times = {
            net.transfer_time(a, b, 1000)
            for a in range(6)
            for b in range(6)
            if a != b
        }
        assert len(times) == 1

    def test_intra_node_cheaper(self):
        inter = HockneyParams(1e-5, 1e-9)
        intra = HockneyParams(1e-7, 1e-10)
        net = HomogeneousNetwork(
            4, inter, intra_params=intra, mapping=block_mapping(4, 2)
        )
        # Ranks 0,1 share node 0; ranks 2,3 share node 1.
        assert net.transfer_time(0, 1, 1000) == pytest.approx(
            intra.transfer_time(1000)
        )
        assert net.transfer_time(0, 2, 1000) == pytest.approx(
            inter.transfer_time(1000)
        )

    def test_intra_without_mapping_rejected(self):
        with pytest.raises(TopologyError):
            HomogeneousNetwork(
                4,
                HockneyParams(1e-5, 1e-9),
                intra_params=HockneyParams(1e-7, 1e-10),
            )

    def test_links_unique_per_pair(self):
        net = HomogeneousNetwork(4, HockneyParams(1e-5, 1e-9))
        assert net.links(0, 1) != net.links(1, 0)
        assert net.links(0, 1) != net.links(0, 2)
