"""Identity pins for the extracted fig8 zigzag sub-grid enumeration."""

import pytest

from repro.core.grouping import group_aligned_mapping
from repro.errors import TopologyError
from repro.network.mapping import subgrid_blocks, subgrid_order


def _inline_order(s, t, I, J):
    """The historical enumeration as it lived in grouping.py."""
    si, tj = s // I, t // J
    order = []
    for x in range(I):
        for y in range(J):
            for ii in range(si):
                for jj in range(tj):
                    order.append((x * si + ii) * t + (y * tj + jj))
    return tuple(order)


@pytest.mark.parametrize("s,t,I,J", [
    (4, 4, 2, 2), (4, 4, 1, 1), (4, 4, 4, 4), (6, 4, 3, 2),
    (8, 8, 2, 4), (2, 8, 1, 4), (1, 1, 1, 1),
])
def test_order_matches_historical_enumeration(s, t, I, J):
    assert subgrid_order(s, t, I, J) == _inline_order(s, t, I, J)


def test_order_is_a_permutation():
    order = subgrid_order(6, 4, 3, 2)
    assert sorted(order) == list(range(24))


def test_order_pinned_literal():
    # 4x4 grid in 2x2 groups: group (0,0) holds ranks {0,1,4,5}, etc.
    assert subgrid_order(4, 4, 2, 2) == (
        0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15)


def test_blocks_partition_and_shape():
    blocks = subgrid_blocks(4, 4, 2, 2)
    assert blocks == ((0, 1, 4, 5), (2, 3, 6, 7), (8, 9, 12, 13),
                      (10, 11, 14, 15))
    flat = [r for block in blocks for r in block]
    assert tuple(flat) == subgrid_order(4, 4, 2, 2)


def test_blocks_are_rectangles_in_row_major_order():
    for block in subgrid_blocks(6, 8, 3, 2):
        rows = sorted({r // 8 for r in block})
        cols = sorted({r % 8 for r in block})
        expect = tuple((rows[0] + i) * 8 + (cols[0] + j)
                       for i in range(len(rows)) for j in range(len(cols)))
        assert block == expect


@pytest.mark.parametrize("args", [(4, 4, 3, 2), (4, 4, 2, 3), (0, 4, 1, 1)])
def test_invalid_arguments_raise(args):
    with pytest.raises(TopologyError):
        subgrid_order(*args)


def test_group_aligned_mapping_unchanged():
    # The delegating shim must keep the historical node assignment.
    mapping = group_aligned_mapping(4, 4, 2, 2, ranks_per_node=2)
    order = _inline_order(4, 4, 2, 2)
    for position, rank in enumerate(order):
        assert mapping.node(rank) == position // 2
    assert mapping.nnodes == 8
