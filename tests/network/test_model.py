"""Unit tests for repro.network.model (HockneyParams, Network base)."""

import pytest

from repro.errors import TopologyError
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams


class TestHockneyParams:
    def test_transfer_time_formula(self):
        p = HockneyParams(alpha=1e-5, beta=2e-9)
        assert p.transfer_time(1000) == pytest.approx(1e-5 + 1000 * 2e-9)

    def test_zero_bytes_costs_latency(self):
        p = HockneyParams(alpha=1e-5, beta=2e-9)
        assert p.transfer_time(0) == pytest.approx(1e-5)

    def test_negative_bytes_rejected(self):
        p = HockneyParams(alpha=1e-5, beta=2e-9)
        with pytest.raises(TopologyError):
            p.transfer_time(-1)

    def test_bandwidth_property(self):
        p = HockneyParams(alpha=1e-5, beta=1e-9)
        assert p.bandwidth == pytest.approx(1e9)

    def test_from_bandwidth(self):
        p = HockneyParams.from_bandwidth(1e-6, 100e9)
        assert p.beta == pytest.approx(1e-11)

    def test_rejects_nonpositive_alpha(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            HockneyParams(alpha=0, beta=1e-9)

    def test_rejects_nonpositive_beta(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            HockneyParams(alpha=1e-6, beta=0)


class TestNetworkBase:
    def test_nranks(self):
        net = HomogeneousNetwork(8, HockneyParams(1e-5, 1e-9))
        assert net.nranks == 8

    def test_out_of_range_pair(self):
        net = HomogeneousNetwork(4, HockneyParams(1e-5, 1e-9))
        with pytest.raises(TopologyError):
            net.transfer_time(0, 4, 10)
        with pytest.raises(TopologyError):
            net.transfer_time(-1, 0, 10)

    def test_self_transfer_free(self):
        net = HomogeneousNetwork(4, HockneyParams(1e-5, 1e-9))
        assert net.transfer_time(2, 2, 12345) == 0.0

    def test_self_link_empty(self):
        net = HomogeneousNetwork(4, HockneyParams(1e-5, 1e-9))
        assert net.links(1, 1) == ()

    def test_default_hops(self):
        net = HomogeneousNetwork(4, HockneyParams(1e-5, 1e-9))
        assert net.hops(0, 1) == 1
        assert net.hops(2, 2) == 0

    def test_rejects_empty_network(self):
        with pytest.raises(TopologyError):
            HomogeneousNetwork(0, HockneyParams(1e-5, 1e-9))
