"""Tests for Fox's algorithm."""

import numpy as np
import pytest

from repro.algorithms.fox import run_fox
from repro.blocks.verify import max_abs_error
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestFox:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_square_grids(self, rng, q):
        n = 12
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_fox(A, B, grid=(q, q), params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular_matrices(self, rng):
        A = rng.standard_normal((6, 9))
        B = rng.standard_normal((9, 12))
        C, _ = run_fox(A, B, grid=(3, 3), params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_non_square_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="square grid"):
            run_fox(np.zeros((8, 8)), np.zeros((8, 8)),
                    grid=(4, 2), params=PARAMS)

    def test_phantom_mode(self):
        C, sim = run_fox(PhantomArray((32, 32)), PhantomArray((32, 32)),
                         grid=(2, 2), params=PARAMS)
        assert isinstance(C, PhantomArray)
        assert sim.total_time > 0

    def test_uses_broadcasts_unlike_cannon(self):
        """Fox broadcasts A tiles (log trees) while Cannon only shifts;
        message counts differ accordingly."""
        from repro.algorithms.cannon import run_cannon

        q, n = 4, 16
        _, fox_sim = run_fox(PhantomArray((n, n)), PhantomArray((n, n)),
                             grid=(q, q), params=PARAMS)
        _, can_sim = run_cannon(PhantomArray((n, n)), PhantomArray((n, n)),
                                grid=(q, q), params=PARAMS)
        assert fox_sim.total_messages != can_sim.total_messages
