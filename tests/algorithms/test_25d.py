"""Tests for the 2.5D algorithm."""

import numpy as np
import pytest

from repro.algorithms.algo25d import run_25d
from repro.blocks.verify import max_abs_error
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestAlgo25d:
    @pytest.mark.parametrize("nprocs,c", [(4, 1), (8, 2), (16, 1), (27, 3), (32, 2)])
    def test_valid_configs(self, rng, nprocs, c):
        n = 24
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_25d(A, B, nprocs=nprocs, replication=c, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular_matrices(self, rng):
        A = rng.standard_normal((8, 12))
        B = rng.standard_normal((12, 16))
        C, _ = run_25d(A, B, nprocs=8, replication=2, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_c1_matches_summa_structure(self, rng):
        """c=1 is a plain 2-D algorithm (SUMMA at tile granularity)."""
        n = 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_25d(A, B, nprocs=16, replication=1, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_invalid_p_c_combo(self):
        with pytest.raises(ConfigurationError):
            run_25d(np.zeros((8, 8)), np.zeros((8, 8)),
                    nprocs=12, replication=2, params=PARAMS)

    def test_c_must_divide_q(self):
        # p = 36, c = 3 -> q^2 = 12, not integral; and even q=6,c=4 fails.
        with pytest.raises(ConfigurationError):
            run_25d(np.zeros((8, 8)), np.zeros((8, 8)),
                    nprocs=36, replication=3, params=PARAMS)

    def test_phantom_mode(self):
        C, sim = run_25d(PhantomArray((32, 32)), PhantomArray((32, 32)),
                         nprocs=32, replication=2, params=PARAMS)
        assert isinstance(C, PhantomArray)
        assert sim.total_time > 0

    def test_replication_reduces_step_bandwidth(self):
        """More layers -> fewer pivot steps per layer -> less per-rank
        broadcast traffic in the compute phase (the 2.5D tradeoff)."""
        n = 64
        # Same layer grid q=4, growing replication.
        _, sim_c1 = run_25d(PhantomArray((n, n)), PhantomArray((n, n)),
                            nprocs=16, replication=1, params=PARAMS)
        _, sim_c2 = run_25d(PhantomArray((n, n)), PhantomArray((n, n)),
                            nprocs=32, replication=2, params=PARAMS)
        # Bytes per rank in the pivot phase halve with c=2.
        assert sim_c2.comm_time < sim_c1.comm_time
