"""Tests for the 3-D (DNS/Agarwal) algorithm."""

import numpy as np
import pytest

from repro.algorithms.dns3d import run_dns3d
from repro.blocks.verify import max_abs_error
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestDns3d:
    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_cubic_grids(self, rng, q):
        n = 12
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_dns3d(A, B, nprocs=q**3, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular_matrices(self, rng):
        A = rng.standard_normal((4, 6))
        B = rng.standard_normal((6, 8))
        C, _ = run_dns3d(A, B, nprocs=8, params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_non_cubic_rejected(self):
        with pytest.raises(ConfigurationError, match="cubic"):
            run_dns3d(np.zeros((8, 8)), np.zeros((8, 8)),
                      nprocs=9, params=PARAMS)

    def test_phantom_mode(self):
        C, sim = run_dns3d(PhantomArray((18, 18)), PhantomArray((18, 18)),
                           nprocs=27, params=PARAMS)
        assert isinstance(C, PhantomArray)
        assert sim.total_time > 0

    def test_replication_memory_cost(self):
        """Every rank holds a copy of an A and B tile: total bytes moved
        reflect the q-fold replication the paper criticises."""
        n, q = 16, 2
        _, sim = run_dns3d(PhantomArray((n, n)), PhantomArray((n, n)),
                           nprocs=q**3, params=PARAMS)
        tile_bytes = (n // q) * (n // q) * 8
        # Each A tile reaches q ranks (j-axis), each B tile likewise.
        assert sim.total_bytes >= 2 * q * q * (q - 1) * tile_bytes

    def test_lower_comm_than_summa_at_scale(self):
        """The 3D algorithm's p^(1/6) communication advantage (paper
        Section I) must show against SUMMA at equal p."""
        from repro.core.summa import run_summa

        n, p = 64, 64  # q = 4 for 3D; 8x8 for SUMMA
        _, sim3d = run_dns3d(PhantomArray((n, n)), PhantomArray((n, n)),
                             nprocs=p, params=PARAMS)
        _, sim2d = run_summa(PhantomArray((n, n)), PhantomArray((n, n)),
                             grid=(8, 8), block=8, params=PARAMS)
        assert sim3d.comm_time < sim2d.comm_time
