"""Tests for Cannon's algorithm."""

import numpy as np
import pytest

from repro.algorithms.cannon import run_cannon
from repro.blocks.verify import max_abs_error
from repro.errors import ConfigurationError
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)


class TestCannon:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_square_grids(self, rng, q):
        n = 12
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_cannon(A, B, grid=(q, q), params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_rectangular_matrices(self, rng):
        A = rng.standard_normal((6, 9))
        B = rng.standard_normal((9, 12))
        C, _ = run_cannon(A, B, grid=(3, 3), params=PARAMS)
        assert max_abs_error(C, A @ B) < 1e-10

    def test_non_square_grid_rejected(self, rng):
        """The restriction the paper cites against Cannon."""
        with pytest.raises(ConfigurationError, match="square grid"):
            run_cannon(np.zeros((8, 8)), np.zeros((8, 8)),
                       grid=(2, 4), params=PARAMS)

    def test_inner_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cannon(np.zeros((4, 4)), np.zeros((6, 4)),
                       grid=(2, 2), params=PARAMS)

    def test_phantom_mode(self):
        C, sim = run_cannon(PhantomArray((64, 64)), PhantomArray((64, 64)),
                            grid=(4, 4), params=PARAMS)
        assert isinstance(C, PhantomArray)
        assert sim.total_time > 0

    def test_message_count(self):
        """q-1 shift rounds, 2 matrices, q^2 ranks, plus skew."""
        q = 4
        _, sim = run_cannon(PhantomArray((16, 16)), PhantomArray((16, 16)),
                            grid=(q, q), params=PARAMS)
        shifts = 2 * q * q * (q - 1)
        # Skew: rows 1..q-1 shift A (q ranks each), cols 1..q-1 shift B.
        skew = 2 * q * (q - 1)
        assert sim.total_messages == shifts + skew

    def test_compute_time(self):
        gamma = 1e-9
        n, q = 16, 4
        _, sim = run_cannon(PhantomArray((n, n)), PhantomArray((n, n)),
                            grid=(q, q), params=PARAMS, gamma=gamma)
        assert sim.compute_time == pytest.approx(2 * n**3 / (q * q) * gamma)
