"""Tests for the serial reference."""

import numpy as np
import pytest

from repro.algorithms.serial import run_serial
from repro.blocks.verify import max_abs_error
from repro.errors import ConfigurationError
from repro.payloads import PhantomArray


class TestSerial:
    def test_correct(self, rng):
        A = rng.standard_normal((8, 12))
        B = rng.standard_normal((12, 4))
        C, _ = run_serial(A, B)
        assert max_abs_error(C, A @ B) < 1e-12

    def test_charges_flops(self):
        _, sim = run_serial(PhantomArray((10, 20)), PhantomArray((20, 30)),
                            gamma=1e-9)
        assert sim.total_time == pytest.approx(2 * 10 * 20 * 30 * 1e-9)
        assert sim.comm_time == 0.0

    def test_phantom(self):
        C, _ = run_serial(PhantomArray((4, 4)), PhantomArray((4, 4)))
        assert isinstance(C, PhantomArray)

    def test_mismatch(self):
        with pytest.raises(ConfigurationError):
            run_serial(np.zeros((4, 4)), np.zeros((5, 4)))
