"""Tests for the extremum analysis (paper eqs. 6-12)."""


import pytest

from repro.errors import ModelError
from repro.models.broadcast_model import BINOMIAL_MODEL, VANDEGEIJN_MODEL
from repro.models.optimizer import (
    critical_ratio,
    hsumma_beats_summa,
    optimal_group_count,
    predicted_extremum_kind,
    vdg_cost_derivative,
)


class TestCriticalRatio:
    def test_formula(self):
        assert critical_ratio(8192, 64, 128) == pytest.approx(8192.0)

    def test_paper_grid5000_numbers(self):
        """Section V-A-1: 2 * 8192 * 64 / 128 = 8192 < 1e5 = alpha/beta."""
        assert hsumma_beats_summa(8192, 64, 128, 1e-4, 1e-9)

    def test_paper_bgp_numbers(self):
        """Section V-B-1: alpha/beta = 3000 > 2048 = 2nb/p."""
        assert critical_ratio(65536, 256, 16384) == pytest.approx(2048.0)
        assert hsumma_beats_summa(65536, 256, 16384, 3e-6, 1e-9)

    def test_paper_exascale_numbers(self):
        """Section V-C: 2 * 2^22 * 256 / 2^20 = 2048."""
        assert critical_ratio(2**22, 256, 2**20) == pytest.approx(2048.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            critical_ratio(0, 64, 128)


class TestExtremumKind:
    def test_minimum(self):
        assert predicted_extremum_kind(1024, 16, 4096, 1e-4, 1e-9) == "minimum"

    def test_maximum(self):
        assert predicted_extremum_kind(2**22, 4096, 64, 1e-4, 1e-9) == "maximum"

    def test_flat(self):
        n, b, p = 1024, 16, 64
        alpha = 1e-9 * critical_ratio(n, b, p)
        assert predicted_extremum_kind(n, b, p, alpha, 1e-9) == "flat"


class TestDerivative:
    def test_zero_at_sqrt_p(self):
        assert vdg_cost_derivative(1024, 4096, 64.0, 16, 1e-4, 1e-9) == 0.0

    def test_sign_flips_across_sqrt_p(self):
        """Minimum case: negative below sqrt(p), positive above."""
        n, p, b = 1024, 4096, 16
        below = vdg_cost_derivative(n, p, 8, b, 1e-4, 1e-9)
        above = vdg_cost_derivative(n, p, 512, b, 1e-4, 1e-9)
        assert below < 0 < above

    def test_sign_reversed_in_maximum_case(self):
        n, p, b = 2**22, 64, 4096
        below = vdg_cost_derivative(n, p, 2, b, 1e-4, 1e-9)
        above = vdg_cost_derivative(n, p, 32, b, 1e-4, 1e-9)
        assert below > 0 > above

    def test_bounds(self):
        with pytest.raises(ModelError):
            vdg_cost_derivative(1024, 64, 0, 16, 1e-4, 1e-9)


class TestCrossover:
    def test_inverse_of_threshold(self):
        from repro.models.optimizer import crossover_processor_count

        n, b, alpha, beta = 65536, 256, 3e-6, 1e-9
        p_star = crossover_processor_count(n, b, alpha, beta)
        # Just below: threshold fails; just above: holds.
        assert not hsumma_beats_summa(n, b, p_star * 0.99, alpha, beta)
        assert hsumma_beats_summa(n, b, p_star * 1.01, alpha, beta)

    def test_bgp_crossover_between_8k_and_16k(self):
        """Explains Figure 9's model-side shape: parity through 8192,
        win at 16384."""
        from repro.models.optimizer import crossover_processor_count

        p_star = crossover_processor_count(65536, 256, 3e-6, 1e-9)
        assert 8192 < p_star < 16384

    def test_validation(self):
        from repro.models.optimizer import crossover_processor_count

        with pytest.raises(ModelError):
            crossover_processor_count(0, 1, 1, 1)


class TestOptimalGroupCount:
    def test_interior_optimum(self):
        G, t = optimal_group_count(1024, 4096, 16, 1e-4, 1e-9)
        assert G == 64  # sqrt(4096)
        assert t > 0

    def test_degenerate_optimum(self):
        G, _ = optimal_group_count(2**22, 64, 4096, 1e-4, 1e-9)
        assert G in (1, 64)

    def test_binomial_flat_prefers_any(self):
        G, t = optimal_group_count(1024, 64, 16, 1e-4, 1e-9, BINOMIAL_MODEL)
        ref = optimal_group_count(1024, 64, 16, 1e-4, 1e-9, BINOMIAL_MODEL,
                                  candidates=[1])[1]
        assert t == pytest.approx(ref)

    def test_explicit_candidates(self):
        G, _ = optimal_group_count(
            1024, 4096, 16, 1e-4, 1e-9, VANDEGEIJN_MODEL, candidates=[1, 2]
        )
        assert G == 2

    def test_candidate_out_of_range(self):
        with pytest.raises(ModelError):
            optimal_group_count(1024, 64, 16, 1e-4, 1e-9,
                                candidates=[128])

    def test_non_square_p_includes_powers(self):
        G, _ = optimal_group_count(1024, 128, 16, 1e-4, 1e-9)
        assert 1 <= G <= 128


class TestGridRestrictedCandidates:
    """The planner-facing extension: candidate ``G`` restricted to the
    counts actually realisable on an ``s x t`` processor grid."""

    def test_default_candidates_without_grid(self):
        from repro.models.optimizer import default_group_candidates

        cands = default_group_candidates(64)
        assert cands == [1, 2, 4, 8, 16, 32, 64]

    def test_default_candidates_include_exact_sqrt(self):
        from repro.models.optimizer import default_group_candidates

        assert 3 in default_group_candidates(9)

    def test_grid_restricts_to_feasible_counts(self):
        from repro.core.grouping import valid_group_counts
        from repro.models.optimizer import default_group_candidates

        assert default_group_candidates(9, grid=(3, 3)) == (
            valid_group_counts(3, 3)
        )

    def test_grid_excludes_unrealisable_counts(self):
        """G=2 on a 3x3 grid has no I|3, J|3 split with I*J=2."""
        from repro.models.optimizer import default_group_candidates

        assert 2 not in default_group_candidates(9, grid=(3, 3))

    def test_grid_must_match_p(self):
        from repro.models.optimizer import default_group_candidates

        with pytest.raises(ModelError):
            default_group_candidates(64, grid=(4, 4))

    def test_optimal_group_count_with_grid(self):
        G, _ = optimal_group_count(1024, 9, 16, 1e-4, 1e-9, grid=(3, 3))
        assert G in (1, 3, 9)

    def test_grid_and_unrestricted_agree_on_square_pow2(self):
        """On a 64x64 grid every power of two is feasible, so the
        restricted optimum can only improve on the sweep's."""
        p = 4096
        g_free, t_free = optimal_group_count(1024, p, 16, 1e-4, 1e-9)
        g_grid, t_grid = optimal_group_count(1024, p, 16, 1e-4, 1e-9,
                                             grid=(64, 64))
        assert t_grid <= t_free + 1e-18
        assert g_grid == g_free == 64

    def test_empty_candidates_raise(self):
        with pytest.raises(ModelError):
            optimal_group_count(1024, 64, 16, 1e-4, 1e-9, candidates=[])


class TestBoundaries:
    """Boundary behaviour: degenerate group counts and the exact
    alpha/beta = 2nb/p threshold."""

    def test_g1_and_gp_price_identically(self):
        """G=1 and G=p both degenerate to SUMMA (paper Section III)."""
        from repro.models.optimizer import hsumma_communication_cost

        n, p, b = 1024, 4096, 16
        t1 = hsumma_communication_cost(n, p, 1, b, 1e-4, 1e-9,
                                       VANDEGEIJN_MODEL)
        tp = hsumma_communication_cost(n, p, p, b, 1e-4, 1e-9,
                                       VANDEGEIJN_MODEL)
        assert t1 == pytest.approx(tp, rel=1e-12)

    def test_g1_in_candidates_always_valid(self):
        G, _ = optimal_group_count(1024, 64, 16, 1e-4, 1e-9, candidates=[1])
        assert G == 1

    def test_gp_in_candidates_always_valid(self):
        G, _ = optimal_group_count(1024, 64, 16, 1e-4, 1e-9, candidates=[64])
        assert G == 64

    def test_exact_threshold_vdg_cost_is_flat(self):
        """At alpha/beta == 2nb/p the VdG cost is constant in G, the
        derivative vanishes everywhere, and ties resolve to the
        smallest candidate."""
        from repro.models.optimizer import (
            critical_ratio,
            predicted_extremum_kind,
            vdg_cost_derivative,
        )

        n, p, b = 1024, 64, 16
        beta = 1e-9
        alpha = beta * critical_ratio(n, b, p)
        assert predicted_extremum_kind(n, b, p, alpha, beta) == "flat"
        times = [
            optimal_group_count(n, p, b, alpha, beta, candidates=[G])[1]
            for G in (1, 2, 8, 64)
        ]
        for t in times[1:]:
            assert t == pytest.approx(times[0], rel=1e-12)
        for G in (2.0, 8.0, 32.0):
            assert vdg_cost_derivative(n, p, G, b, alpha, beta) == (
                pytest.approx(0.0, abs=1e-24)
            )
        G, _ = optimal_group_count(n, p, b, alpha, beta)
        assert G == 1  # deterministic tie-break to the smallest

    def test_just_off_threshold_breaks_the_tie(self):
        from repro.models.optimizer import critical_ratio

        n, p, b = 1024, 64, 16
        beta = 1e-9
        alpha = beta * critical_ratio(n, b, p)
        g_hi, _ = optimal_group_count(n, p, b, alpha * 1.01, beta)
        assert g_hi == 8  # sqrt(p) minimum appears above threshold
