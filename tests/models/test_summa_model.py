"""Tests for the SUMMA closed-form costs (eq. 2, Tables I/II)."""

import math

import pytest

from repro.errors import ModelError
from repro.models.broadcast_model import BINOMIAL_MODEL, VANDEGEIJN_MODEL
from repro.models.summa_model import (
    summa_bandwidth_factor,
    summa_communication_cost,
    summa_computation_cost,
    summa_latency_factor,
)


class TestSummaModel:
    def test_binomial_factors_table1(self):
        """Table I row: latency log2(p) n/b, bandwidth n^2 log2(p)/sqrt(p)."""
        n, p, b = 1024, 64, 16
        assert summa_latency_factor(n, p, b, BINOMIAL_MODEL) == pytest.approx(
            math.log2(p) * n / b
        )
        assert summa_bandwidth_factor(n, p, BINOMIAL_MODEL) == pytest.approx(
            n * n * math.log2(p) / math.sqrt(p)
        )

    def test_vandegeijn_factors_table2(self):
        """Table II row: (log2 p + 2(sqrt(p)-1)) n/b latency,
        4(1 - 1/sqrt(p)) n^2/sqrt(p) bandwidth."""
        n, p, b = 1024, 64, 16
        q = math.sqrt(p)
        assert summa_latency_factor(n, p, b, VANDEGEIJN_MODEL) == pytest.approx(
            (math.log2(p) + 2 * (q - 1)) * n / b
        )
        assert summa_bandwidth_factor(n, p, VANDEGEIJN_MODEL) == pytest.approx(
            4 * (1 - 1 / q) * n * n / q
        )

    def test_cost_decomposition(self):
        n, p, b = 512, 16, 8
        alpha, beta = 1e-5, 1e-9
        total = summa_communication_cost(n, p, b, alpha, beta, BINOMIAL_MODEL)
        assert total == pytest.approx(
            summa_latency_factor(n, p, b, BINOMIAL_MODEL) * alpha
            + summa_bandwidth_factor(n, p, BINOMIAL_MODEL) * beta
        )

    def test_computation_cost(self):
        assert summa_computation_cost(100, 4, 1e-9) == pytest.approx(
            2 * 100**3 / 4 * 1e-9
        )

    def test_larger_block_less_latency(self):
        n, p = 1024, 64
        small = summa_latency_factor(n, p, 8, VANDEGEIJN_MODEL)
        large = summa_latency_factor(n, p, 64, VANDEGEIJN_MODEL)
        assert large < small

    def test_block_independent_bandwidth(self):
        """The bandwidth term has no b: total volume is fixed."""
        n, p = 1024, 64
        assert summa_bandwidth_factor(n, p, BINOMIAL_MODEL) == (
            summa_bandwidth_factor(n, p, BINOMIAL_MODEL)
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            summa_communication_cost(0, 4, 2, 1e-5, 1e-9, BINOMIAL_MODEL)
        with pytest.raises(ModelError):
            summa_communication_cost(16, 4, 32, 1e-5, 1e-9, BINOMIAL_MODEL)
        with pytest.raises(ModelError):
            summa_computation_cost(16, 0, 1e-9)
