"""Tests for Hockney parameter fitting."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models.calibration import calibrate_network, fit_hockney
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.network.torus import Torus3D


class TestFitHockney:
    def test_exact_recovery(self):
        true = HockneyParams(alpha=2e-5, beta=3e-9)
        sizes = [0, 1000, 10_000, 100_000]
        times = [true.transfer_time(s) for s in sizes]
        fit = fit_hockney(sizes, times)
        assert fit.params.alpha == pytest.approx(2e-5)
        assert fit.params.beta == pytest.approx(3e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.residual_rms < 1e-15

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        true = HockneyParams(alpha=1e-4, beta=1e-9)
        sizes = np.linspace(0, 1 << 20, 50)
        times = np.array([true.transfer_time(s) for s in sizes])
        times *= 1 + 0.01 * rng.standard_normal(50)
        fit = fit_hockney(sizes, times)
        assert fit.params.alpha == pytest.approx(1e-4, rel=0.2)
        assert fit.params.beta == pytest.approx(1e-9, rel=0.05)
        assert fit.r_squared > 0.99

    def test_predict(self):
        fit = fit_hockney([0, 1000], [1e-5, 1e-5 + 1e-6])
        assert fit.predict(2000) == pytest.approx(1e-5 + 2e-6)

    def test_needs_two_sizes(self):
        with pytest.raises(ModelError):
            fit_hockney([100, 100], [1e-5, 1e-5])

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            fit_hockney([1, 2, 3], [1e-5, 2e-5])

    def test_nonphysical_rejected(self):
        # Decreasing times with size -> negative beta.
        with pytest.raises(ModelError, match="non-physical"):
            fit_hockney([0, 1000, 2000], [3e-5, 2e-5, 1e-5])


class TestCalibrateNetwork:
    def test_homogeneous_recovers_exact(self):
        params = HockneyParams(alpha=5e-6, beta=2e-10)
        net = HomogeneousNetwork(8, params)
        fit = calibrate_network(net)
        assert fit.params.alpha == pytest.approx(5e-6)
        assert fit.params.beta == pytest.approx(2e-10)

    def test_torus_pair_dependent(self):
        """Far pairs calibrate a larger alpha than near pairs."""
        net = Torus3D((4, 4, 4), HockneyParams(3e-6, 1e-9), alpha_hop=1e-6)
        near = calibrate_network(net, src=0, dst=1)
        far = calibrate_network(net, src=0, dst=net.nranks - 1)
        assert far.params.alpha > near.params.alpha
        assert far.params.beta == pytest.approx(near.params.beta)

    def test_calibration_closes_the_loop(self):
        """Fitting the simulator's own platform preset returns the
        preset parameters — the workflow a user would run on a real
        machine."""
        from repro.platforms.bluegene import BGP_PARAMS, bluegene_p

        net = bluegene_p(64).network(64)
        fit = calibrate_network(net, src=0, dst=net.nranks - 1)
        assert fit.params.beta == pytest.approx(BGP_PARAMS.beta)
        # The far pair crosses several torus hops: extra latency.
        assert fit.params.alpha > BGP_PARAMS.alpha
