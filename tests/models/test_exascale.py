"""Tests for the exascale prediction (Figure 10)."""

import pytest

from repro.models.exascale import ExascaleScenario, exascale_prediction


class TestScenario:
    def test_paper_parameters(self):
        sc = ExascaleScenario()
        assert sc.n == 2**22
        assert sc.p == 2**20
        assert sc.b == 256
        assert sc.alpha == pytest.approx(500e-9)

    def test_gamma_from_machine_rate(self):
        sc = ExascaleScenario()
        # p ranks share 1 Eflop/s.
        assert sc.gamma == pytest.approx(2**20 / 1e18)


class TestPrediction:
    def test_optimal_at_sqrt_p(self):
        pred = exascale_prediction()
        assert pred["optimal_G"] == 1024  # sqrt(2^20)

    def test_hsumma_beats_summa(self):
        pred = exascale_prediction()
        assert min(pred["hsumma"]) < pred["summa"]

    def test_endpoints_equal_summa(self):
        pred = exascale_prediction()
        assert pred["hsumma"][0] == pytest.approx(pred["summa"])
        assert pred["hsumma"][-1] == pytest.approx(pred["summa"])

    def test_u_shape(self):
        pred = exascale_prediction()
        hs = pred["hsumma"]
        mid = hs.index(min(hs))
        assert all(hs[i] >= hs[i + 1] - 1e-12 for i in range(mid))
        assert all(hs[i] <= hs[i + 1] + 1e-12 for i in range(mid, len(hs) - 1))

    def test_include_compute_shifts_both(self):
        without = exascale_prediction()
        with_c = exascale_prediction(include_compute=True)
        shift = with_c["compute"]
        assert shift > 0
        assert with_c["summa"] == pytest.approx(without["summa"] + shift)

    def test_custom_groups(self):
        pred = exascale_prediction(groups=[1, 1024, 2**20])
        assert pred["groups"] == [1, 1024, 2**20]
        assert len(pred["hsumma"]) == 3
