"""Tests for the strong/weak scaling analysis."""

import pytest

from repro.errors import ModelError
from repro.models.scaling import (
    scalability_limit,
    strong_scaling,
    weak_scaling,
)

# BG/P-flavoured parameters (beta per element).
ARGS = dict(b=256, alpha=3e-6, beta=1e-9, gamma=3.7e-10)


class TestStrongScaling:
    def test_compute_shrinks_like_1_over_p(self):
        pts = strong_scaling(65536, [1024, 4096], **ARGS)
        assert pts[0].compute / pts[1].compute == pytest.approx(4.0)

    def test_comm_fraction_grows(self):
        """The paper's motivation: communication dominates at scale."""
        pts = strong_scaling(65536, [256, 1024, 4096, 16384, 65536], **ARGS)
        fracs = [pt.summa_comm_fraction for pt in pts]
        assert all(b > a for a, b in zip(fracs, fracs[1:]))

    def test_hsumma_fraction_never_larger(self):
        pts = strong_scaling(65536, [1024, 16384, 65536], **ARGS)
        for pt in pts:
            assert pt.hsumma_comm <= pt.summa_comm * (1 + 1e-12)
            assert pt.hsumma_comm_fraction <= pt.summa_comm_fraction + 1e-12

    def test_point_accessors(self):
        (pt,) = strong_scaling(65536, [16384], **ARGS)
        assert pt.summa_total == pytest.approx(pt.compute + pt.summa_comm)
        assert 0 < pt.summa_comm_fraction < 1
        assert 1 <= pt.best_groups <= pt.p

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            strong_scaling(65536, [], **ARGS)


class TestWeakScaling:
    def test_n_grows_with_sqrt_p(self):
        pts = weak_scaling(512, [256, 1024], **ARGS)
        assert pts[1].n == pytest.approx(2 * pts[0].n, rel=0.1)

    def test_n_multiple_of_block(self):
        for pt in weak_scaling(500, [64, 256, 4096], **ARGS):
            assert pt.n % ARGS["b"] == 0

    def test_comm_fraction_grows_slower_than_strong(self):
        """Weak scaling is the friendly regime for 2-D algorithms."""
        strong = strong_scaling(65536, [1024, 65536], **ARGS)
        weak = weak_scaling(2048, [1024, 65536], **ARGS)
        strong_growth = (strong[1].summa_comm_fraction
                         - strong[0].summa_comm_fraction)
        weak_growth = weak[1].summa_comm_fraction - weak[0].summa_comm_fraction
        assert weak_growth < strong_growth

    def test_invalid_memory(self):
        with pytest.raises(ModelError):
            weak_scaling(0, [16], **ARGS)


class TestScalabilityLimit:
    def test_hsumma_extends_the_limit(self):
        """The paper's 'more scalable' claim as a number: HSUMMA's
        comm-dominance point sits at a strictly larger p."""
        p_summa = scalability_limit(65536, **ARGS, algorithm="summa")
        p_hsumma = scalability_limit(65536, **ARGS, algorithm="hsumma")
        assert p_hsumma >= 2 * p_summa

    def test_limit_is_a_crossing(self):
        p_star = scalability_limit(65536, **ARGS, algorithm="summa")
        below = strong_scaling(65536, [p_star // 2], **ARGS)[0]
        above = strong_scaling(65536, [p_star], **ARGS)[0]
        assert below.summa_comm_fraction <= 0.5 < above.summa_comm_fraction

    def test_unknown_algorithm(self):
        with pytest.raises(ModelError):
            scalability_limit(65536, **ARGS, algorithm="cannon")

    def test_p_max_cap(self):
        # Absurdly fast network: communication never dominates.
        p = scalability_limit(65536, b=256, alpha=1e-12, beta=1e-15,
                              gamma=1e-6, p_max=1 << 20)
        assert p == 1 << 20
