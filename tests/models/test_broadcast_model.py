"""Tests for the general broadcast model (paper eq. 1)."""

import math

import pytest

from repro.models.broadcast_model import (
    BINOMIAL_MODEL,
    FLAT_MODEL,
    MODELS,
    VANDEGEIJN_MODEL,
)


class TestModelIdentities:
    def test_L1_W1_zero(self):
        """The paper requires L(1) = W(1) = 0."""
        for model in MODELS.values():
            assert model.L(1) == 0.0
            assert model.W(1) == 0.0
            assert model.time(1e6, 1, 1e-5, 1e-9) == 0.0

    def test_binomial_log(self):
        assert BINOMIAL_MODEL.L(8) == pytest.approx(3.0)
        assert BINOMIAL_MODEL.W(1024) == pytest.approx(10.0)

    def test_vandegeijn_forms(self):
        p = 16
        assert VANDEGEIJN_MODEL.L(p) == pytest.approx(math.log2(p) + p - 1)
        assert VANDEGEIJN_MODEL.W(p) == pytest.approx(2 * (p - 1) / p)

    def test_flat_linear(self):
        assert FLAT_MODEL.L(10) == 9.0

    def test_monotonic_in_p(self):
        for model in MODELS.values():
            values = [model.L(p) for p in (2, 4, 8, 16, 32)]
            assert values == sorted(values)

    def test_time_formula(self):
        t = BINOMIAL_MODEL.time(1000, 8, 1e-5, 1e-9)
        assert t == pytest.approx(3 * 1e-5 + 1000 * 3 * 1e-9)

    def test_vdg_bandwidth_bounded_by_two(self):
        """W -> 2 as p grows: each byte crosses the wire twice."""
        assert VANDEGEIJN_MODEL.W(1e6) < 2.0
        assert VANDEGEIJN_MODEL.W(1e6) > 1.99

    def test_non_integer_p(self):
        """The optimizer differentiates through sqrt(p): models must
        accept non-integer participant counts."""
        assert BINOMIAL_MODEL.L(11.3) == pytest.approx(math.log2(11.3))
