"""Tests for the HSUMMA closed-form costs (eqs. 3-5, 12, Tables I/II)."""

import math

import pytest

from repro.errors import ModelError
from repro.models.broadcast_model import BINOMIAL_MODEL, VANDEGEIJN_MODEL
from repro.models.hsumma_model import (
    hsumma_bandwidth_factor,
    hsumma_communication_cost,
    hsumma_latency_factor,
    hsumma_optimal_vdg_cost,
)
from repro.models.summa_model import summa_communication_cost


class TestDegenerationIdentity:
    """T_S is the special case of T_HS at G = 1 and G = p (paper)."""

    @pytest.mark.parametrize("model", [BINOMIAL_MODEL, VANDEGEIJN_MODEL])
    @pytest.mark.parametrize("G", [1])
    def test_g1(self, model, G):
        n, p, b = 2048, 256, 32
        hs = hsumma_communication_cost(n, p, G, b, 1e-5, 1e-9, model)
        s = summa_communication_cost(n, p, b, 1e-5, 1e-9, model)
        assert hs == pytest.approx(s)

    @pytest.mark.parametrize("model", [BINOMIAL_MODEL, VANDEGEIJN_MODEL])
    def test_gp(self, model):
        n, p, b = 2048, 256, 32
        hs = hsumma_communication_cost(n, p, p, b, 1e-5, 1e-9, model)
        s = summa_communication_cost(n, p, b, 1e-5, 1e-9, model)
        assert hs == pytest.approx(s)


class TestBinomialFlatness:
    def test_binomial_independent_of_g(self):
        """Table I: log2(G) + log2(p/G) = log2(p) for every G."""
        n, p, b = 2048, 1024, 32
        ref = hsumma_communication_cost(n, p, 1, b, 1e-5, 1e-9, BINOMIAL_MODEL)
        for G in (2, 4, 32, 256, 1024):
            assert hsumma_communication_cost(
                n, p, G, b, 1e-5, 1e-9, BINOMIAL_MODEL
            ) == pytest.approx(ref)


class TestVdgShape:
    def test_stationary_at_sqrt_p(self):
        """eq. (9): the derivative vanishes at G = sqrt(p)."""
        n, p, b = 4096, 4096, 64
        q = math.sqrt(p)
        def f(G):
            return hsumma_communication_cost(
                n, p, G, b, 1e-4, 1e-9, VANDEGEIJN_MODEL
            )
        eps = 1e-3
        deriv = (f(q + eps) - f(q - eps)) / (2 * eps)
        scale = f(q) / q
        assert abs(deriv) < 1e-6 * abs(scale)

    def test_minimum_when_condition_holds(self):
        """alpha/beta > 2nb/p: sqrt(p) beats both extremes (eq. 10)."""
        n, p, b = 1024, 4096, 16  # 2nb/p = 8; alpha/beta = 1e5
        mid = hsumma_communication_cost(n, p, math.sqrt(p), b, 1e-4, 1e-9,
                                        VANDEGEIJN_MODEL)
        edge = hsumma_communication_cost(n, p, 1, b, 1e-4, 1e-9,
                                         VANDEGEIJN_MODEL)
        assert mid < edge

    def test_maximum_when_condition_fails(self):
        """alpha/beta < 2nb/p: sqrt(p) is the worst choice (eq. 11)."""
        n, p, b = 2**22, 64, 4096  # 2nb/p = 2^35; alpha/beta = 1e5
        mid = hsumma_communication_cost(n, p, math.sqrt(p), b, 1e-4, 1e-9,
                                        VANDEGEIJN_MODEL)
        edge = hsumma_communication_cost(n, p, 1, b, 1e-4, 1e-9,
                                         VANDEGEIJN_MODEL)
        assert mid > edge

    def test_equation_12_matches_general_form(self):
        """eq. (12) is the general cost at G = sqrt(p), b = B."""
        n, p, b = 65536, 16384, 256
        alpha, beta = 3e-6, 1e-9
        direct = hsumma_optimal_vdg_cost(n, p, b, alpha, beta)
        general = hsumma_communication_cost(
            n, p, math.sqrt(p), b, alpha, beta, VANDEGEIJN_MODEL
        )
        assert direct == pytest.approx(general)


class TestSeparateBlocks:
    def test_outer_block_reduces_outer_latency(self):
        """B > b cuts the between-group latency term (Table II rows)."""
        n, p, G, b = 4096, 1024, 32, 16
        small_B = hsumma_latency_factor(n, p, G, b, VANDEGEIJN_MODEL, B=b)
        big_B = hsumma_latency_factor(n, p, G, b, VANDEGEIJN_MODEL, B=8 * b)
        assert big_B < small_B

    def test_b_gt_B_rejected(self):
        with pytest.raises(ModelError):
            hsumma_communication_cost(
                1024, 64, 8, 32, 1e-5, 1e-9, VANDEGEIJN_MODEL, B=16
            )

    def test_bandwidth_factor_positive_and_bounded(self):
        n, p = 4096, 4096
        for G in (1, 8, 64, 512, 4096):
            w = hsumma_bandwidth_factor(n, p, G, VANDEGEIJN_MODEL)
            assert 0 < w <= 8 * n * n / math.sqrt(p)

    def test_invalid_g(self):
        with pytest.raises(ModelError):
            hsumma_communication_cost(1024, 64, 65, 16, 1e-5, 1e-9,
                                      VANDEGEIJN_MODEL)
        with pytest.raises(ModelError):
            hsumma_communication_cost(1024, 64, 0.5, 16, 1e-5, 1e-9,
                                      VANDEGEIJN_MODEL)
