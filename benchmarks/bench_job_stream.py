#!/usr/bin/env python
"""Scheduler SLO comparison on a contended job stream.

Serves the same seeded Poisson trace on a shared 64-rank torus under
every scheduler — FIFO, EASY backfill, planner-informed — twice: once
fault-free and once with three fail-stop kills aimed at busy slots.
Prints the SLO table per run and writes the numbers to
``benchmarks/results/job_stream.json``.

The headline claim (pinned by ``tests/cluster/test_schedulers.py``):
the planner-informed scheduler beats FIFO on p99 job latency both with
and without fail-stop faults, because better launch shapes drain the
queue faster and the backfill order favours short predicted runs.

Usage::

    python benchmarks/bench_job_stream.py           # full table
    python benchmarks/bench_job_stream.py --quick   # 12-job smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "benchmarks" / "results" / "job_stream.json"

SCHEDULERS = ("fifo", "easy", "planner")
#: Three kills aimed at slots the pinned trace keeps busy, so every
#: one aborts a running attempt and forces a retry.
FAILURES = "kill(rank=0,t=0.005);kill(rank=37,t=0.012);kill(rank=55,t=0.02)"


def _scenario(quick):
    from repro.cluster import poisson_stream
    from repro.network.torus import Torus3D
    from repro.simulator.runtime import DEFAULT_PARAMS

    machine = Torus3D((4, 4, 4), DEFAULT_PARAMS)
    # 16 is the shortest prefix of the pinned trace on which the
    # planner's p99 edge survives in both fault regimes.
    njobs = 16 if quick else 40
    jobs = poisson_stream(njobs, rate=2000.0, seed=11,
                          sizes=((256, 4), (384, 4), (512, 16), (1024, 64)),
                          weights=(5, 4, 3, 2))
    return machine, jobs


def run(quick=False):
    from repro.cluster import compare_schedulers

    machine, jobs = _scenario(quick)
    table = {}
    for label, failures in (("fault-free", None), ("fail-stop", FAILURES)):
        results = compare_schedulers(
            jobs, SCHEDULERS, machine=machine, slot_grid=(8, 8),
            gamma=1e-11, failures=failures, max_retries=1,
        )
        table[label] = {name: res.report.to_dict()
                        for name, res in results.items()}
        print(f"--- {label} ({len(jobs)} jobs on {machine.nranks} slots) ---")
        for name, res in results.items():
            print(res.report.to_text())
            print()
    return table


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="16-job smoke stream (CI)")
    parser.add_argument("--no-write", action="store_true",
                        help="print only; leave the results file alone")
    args = parser.parse_args(argv)

    table = run(quick=args.quick)

    for label, reports in table.items():
        fifo = reports["fifo"]["latency_p99"]
        planner = reports["planner"]["latency_p99"]
        verdict = "beats" if planner < fifo else "does NOT beat"
        print(f"{label}: planner p99 {planner:.6g}s {verdict} "
              f"fifo p99 {fifo:.6g}s")

    if not args.no_write:
        OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
        OUT_PATH.write_text(json.dumps(
            {"mode": "quick" if args.quick else "full",
             "failures": FAILURES, "reports": table},
            indent=2, sort_keys=True) + "\n")
        print(f"wrote {OUT_PATH.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
