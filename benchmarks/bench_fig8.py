"""Figure 8: BlueGene/P, 16384 cores, n=65536, b=B=256 — execution and
communication time vs group count.

Paper observation: SUMMA 50.2 s total / 36.46 s comm; HSUMMA minimum
21.26 s total / 6.19 s comm at G=512 (5.89x comm, 2.36x total); the
curve shows topology-induced "zigzags".  Under the paper's own Hockney
parameters the model comm times are much smaller than measured (their
Section V-B-1 validates only the threshold, not absolute values), so
the reproduction criteria are shape-level: interior minimum (the run
below finds it at the paper's G=512), HSUMMA <= SUMMA everywhere,
equality at the extremes, and non-monotonic wiggles from the torus.
"""

from conftest import run_once

from repro.experiments.figures import fig8


def test_fig8_bgp_group_sweep(benchmark, record_output, sweep_jobs, sweep_cache):
    series = run_once(benchmark, fig8,
                      jobs=sweep_jobs, cache=sweep_cache)
    best_g, best_comm = series.min_of("hsumma_comm")
    _, best_total = series.min_of("hsumma_total")
    summa_comm = series.column("summa_comm")[0]
    summa_total = series.column("summa_total")[0]
    lines = [
        series.to_table(
            "Figure 8 — BlueGene/P, p=16384, n=65536, b=B=256 (seconds)"
        ),
        "",
        f"SUMMA:  total {summa_total:.3f} s, comm {summa_comm:.3f} s "
        "(paper measured: 50.2 / 36.46)",
        f"HSUMMA: total {best_total:.3f} s, comm {best_comm:.3f} s "
        f"at G={best_g} (paper measured: 21.26 / 6.19 at G=512)",
        f"comm ratio {summa_comm / best_comm:.2f}x (paper: 5.89x), "
        f"total ratio {summa_total / best_total:.2f}x (paper: 2.36x)",
    ]
    record_output("fig8", "\n".join(lines))

    hs = series.column("hsumma_comm")
    # Identities at the extremes and an interior optimum.
    assert abs(hs[0] - summa_comm) / summa_comm < 1e-6
    assert abs(hs[-1] - summa_comm) / summa_comm < 1e-6
    assert best_comm < summa_comm
    assert 1 < best_g < 16384
    # Paper's measured optimum was G=512; the torus model lands there too.
    assert best_g in (256, 512, 1024)
    # Zigzags: the interior curve is not monotone on both sides only —
    # at least one local non-monotonicity away from the global shape.
    diffs = [b - a for a, b in zip(hs, hs[1:])]
    sign_changes = sum(
        1 for a, b in zip(diffs, diffs[1:]) if a * b < 0
    )
    assert sign_changes >= 1
