"""Ablation: does HSUMMA win under *every* broadcast algorithm?

Paper Section IV-C claims that, independent of the broadcast algorithm
employed, HSUMMA either outperforms SUMMA or matches it.  We sweep the
group count for each executable broadcast algorithm on the BG/P-like
parameter point and check ``min_G HSUMMA <= SUMMA`` for all of them,
plus the algorithm-specific structure (binomial: flat in G; linear-
latency algorithms: strong interior win).
"""

from conftest import run_once

from repro.core.grouping import choose_group_grid, valid_group_counts
from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.experiments.stepmodel import (
    AnalyticCoster,
    hsumma_step_model,
    summa_step_model,
)
from repro.platforms.bluegene import BGP_PARAMS
from repro.util.tables import format_table

P, N, B = 1024, 16384, 64  # scaled-down BG/P point (32x32 grid)
S = T = 32
ALGORITHMS = ["binomial", "vandegeijn", "flat", "chain", "binary", "pipelined"]


def sweep():
    groups = [g for g in valid_group_counts(S, T) if g & (g - 1) == 0]
    out = {}
    for algo in ALGORITHMS:
        coster = AnalyticCoster(BGP_PARAMS, algo)
        scfg = SummaConfig(m=N, l=N, n=N, s=S, t=T, block=B)
        summa = summa_step_model(scfg, coster).comm_time
        hs = {}
        for G in groups:
            I, J = choose_group_grid(S, T, G)
            hcfg = HSummaConfig(m=N, l=N, n=N, s=S, t=T, I=I, J=J,
                                outer_block=B, inner_block=B)
            hs[G] = hsumma_step_model(hcfg, coster).comm_time
        out[algo] = (summa, hs)
    return out


def test_hsumma_wins_under_every_broadcast(benchmark, record_output):
    results = run_once(benchmark, sweep)
    rows = []
    for algo, (summa, hs) in results.items():
        best_g = min(hs, key=lambda g: (hs[g], g))
        rows.append([algo, summa, hs[best_g], best_g, summa / hs[best_g]])
    text = format_table(
        ["broadcast", "summa_comm", "best_hsumma_comm", "best_G", "ratio"],
        rows,
        title=(
            f"Ablation — broadcast algorithm (p={P}, n={N}, b=B={B}, "
            "BG/P Hockney params)"
        ),
    )
    record_output("ablation_broadcast", text)

    for algo, (summa, hs) in results.items():
        best = min(hs.values())
        # Paper IV-C: never worse than SUMMA under any broadcast.
        assert best <= summa * (1 + 1e-9), algo
    # Binomial: flat in G (Table I).
    summa_b, hs_b = results["binomial"]
    assert max(hs_b.values()) - min(hs_b.values()) < 1e-9 * summa_b
    # Linear-latency algorithms benefit enormously from the hierarchy...
    for algo in ("flat", "chain"):
        summa_a, hs_a = results[algo]
        assert min(hs_a.values()) < summa_a * 0.5, algo
    # ...while vdg (log latency + near-optimal bandwidth) gains a
    # smaller but strict interior win (threshold 2048 < 3000 here).
    summa_v, hs_v = results["vandegeijn"]
    assert min(hs_v.values()) < summa_v * 0.95
