#!/usr/bin/env python
"""Engine speed benchmark: canonical workloads, baseline file, CI gate.

Times a fixed set of workloads that together cover the simulator's hot
paths — full DES SUMMA/HSUMMA, the macro collective backend at scale,
and a faulty DES run — and writes the numbers to ``BENCH_engine.json``
at the repository root.  The file keeps three numbers per workload:

* ``seed``     — wall-clock of the pre-optimisation engine (measured
                 once on the same machine, pinned in the committed file)
* ``current``  — wall-clock of this run
* ``speedup``  — seed / current

Usage::

    python benchmarks/bench_speed.py            # full workloads (~2 min)
    python benchmarks/bench_speed.py --quick    # scaled-down CI smoke (~10 s)
    python benchmarks/bench_speed.py --quick --check
        # regression gate: fail (exit 1) if any gate workload (one per
        # engine tier — DES, macro, predictor) is more than
        # GATE_SLOWDOWN x slower than the committed baseline

``--check`` compares against the ``current`` numbers already in the
committed ``BENCH_engine.json`` *before* overwriting them, so CI fails
when a change regresses the engine even though the file is regenerated.

Virtual results are bit-pinned elsewhere (golden trace/timing tests);
this file is only about wall-clock.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_engine.json"

#: CI gate: fail when a gate workload runs slower than this factor
#: times the committed baseline.  Generous on purpose — CI machines
#: vary — while still catching a hot path accidentally reverted.
GATE_SLOWDOWN = 1.5
#: One gate per engine tier: full DES, the symmetry-collapsed macro
#: path (SUMMA-cyclic plus the torus-shift cannon family landed with
#: the PR-9 symmetries), the zero-stepping closed-form predictor, the
#: plan service's hot cache path, and the multi-tenant job-stream
#: simulator (both a dumb and a planner-informed scheduler).
GATE_WORKLOADS = ("des_summa_p64", "macro_cyclic_p1024",
                  "macro_cannon_p1024", "predictor_fig10_sweep",
                  "planner_plans_per_sec", "job_stream_fifo_p64",
                  "job_stream_planner_p64")

#: The plan-cache contract: a repeated query must be served at least
#: this much faster than the cold enumerate/rank/refine path.
PLANNER_MIN_SPEEDUP = 100.0
PLANNER_COLD_ITERS = 5
PLANNER_HOT_ITERS = 2000


# -- workloads ----------------------------------------------------------------
#
# Each is a zero-argument callable built fresh per repetition (payload
# construction is inside the timed region only where it is negligible).

def _grid5000(p):
    from repro.platforms.grid5000 import grid5000_graphene

    return grid5000_graphene(p)


def _des_summa(n, grid, block, p):
    from repro.core.summa import run_summa
    from repro.payloads import PhantomArray

    plat = _grid5000(p)
    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    run_summa(A, B, grid=grid, block=block, network=plat.network(p),
              options=plat.options, gamma=plat.gamma)


def _des_hsumma(n, grid, groups, block, p):
    from repro.core.hsumma import run_hsumma
    from repro.payloads import PhantomArray

    plat = _grid5000(p)
    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    run_hsumma(A, B, grid=grid, groups=groups, outer_block=block,
               network=plat.network(p), options=plat.options,
               gamma=plat.gamma)


def _macro_cyclic(n, grid, nb):
    from repro.core.cyclic import run_cyclic
    from repro.network.model import HockneyParams
    from repro.payloads import PhantomArray

    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    run_cyclic(A, B, grid=grid, nb=nb,
               params=HockneyParams(alpha=1e-4, beta=1e-9),
               gamma=1e-10, backend="macro")


def _macro_cannon(n, q):
    from repro.algorithms.cannon import run_cannon
    from repro.network.model import HockneyParams
    from repro.payloads import PhantomArray

    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    run_cannon(A, B, grid=(q, q),
               params=HockneyParams(alpha=1e-4, beta=1e-9),
               gamma=1e-10, backend="macro")


def _macro_dns3d(n, q):
    from repro.algorithms.dns3d import run_dns3d
    from repro.network.model import HockneyParams
    from repro.payloads import PhantomArray

    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    run_dns3d(A, B, nprocs=q**3,
              params=HockneyParams(alpha=1e-4, beta=1e-9),
              gamma=1e-10, backend="macro")


def _predictor_25d_sweep(p, n):
    """Price the 2.5D replication family at exascale through its
    predictor chain — every ``c`` with ``p = q^2 c`` and ``c | q``
    (zero simulation stepping)."""
    from repro.algorithms.algo25d import run_25d
    from repro.network.model import HockneyParams
    from repro.payloads import PhantomArray
    from repro.planner.space import candidate_replications

    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    for c in candidate_replications(p):
        run_25d(A, B, nprocs=p, replication=c,
                params=HockneyParams(alpha=1e-6, beta=1e-11),
                gamma=1e-12, backend="predictor")


def _des_faulty_summa(n, grid, block, p):
    from repro.core.summa import run_summa
    from repro.faults import parse_fault_spec
    from repro.payloads import PhantomArray

    plat = _grid5000(p)
    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    faults = parse_fault_spec(
        "drop(p=0.02); slow(rank=3,factor=4)", seed=0
    )
    run_summa(A, B, grid=grid, block=block, network=plat.network(p),
              options=plat.options, gamma=plat.gamma, faults=faults)


def _predictor_sweep(p, n, block):
    """The paper's fig10 question — HSUMMA vs SUMMA across group
    counts at exascale — priced entirely by the closed-form predictor
    (zero simulation stepping; see docs/cost_model.md)."""
    from repro.experiments.figures import group_sweep
    from repro.platforms.exa import exascale_2012

    group_sweep(exascale_2012(p), p, n, block, coster_kind="predictor",
                groups=[2 ** k for k in range(1, 11)])


def _planner_cold(n, p):
    """Cold plans: fresh service per plan, so every call pays the full
    enumerate -> closed-form rank -> refine pipeline (at flagship size
    the leaders include segmented-family candidates, which refine
    through the macro engine — by far the dominant cost)."""
    from repro.planner import PlanQuery, PlanService

    q = PlanQuery(n=n, p=p, platform="bluegene-p")
    for _ in range(PLANNER_COLD_ITERS):
        PlanService().plan(q)


_PLANNER_HOT_STATE: dict = {}


def _planner_hot(n, p):
    """Hot plans: one warmed service answering the same (pre-resolved)
    query from its in-process memo — the repeated-query fast path."""
    from repro.planner import PlanQuery, PlanService

    if "svc" not in _PLANNER_HOT_STATE:
        svc = PlanService()
        rq = PlanQuery(n=n, p=p, platform="bluegene-p").resolve()
        svc.plan(rq)  # warm the memo (cold, outside best-of-reps)
        _PLANNER_HOT_STATE.update(svc=svc, rq=rq)
    svc = _PLANNER_HOT_STATE["svc"]
    rq = _PLANNER_HOT_STATE["rq"]
    for _ in range(PLANNER_HOT_ITERS):
        svc.plan(rq)


def _job_stream(scheduler, dims, slot_grid, njobs, rate, sizes, weights):
    """Serve a contended Poisson job stream on a shared torus — the
    multi-tenant path: placement, scheduling, cross-job link
    contention and SLO accounting all in the timed region."""
    from repro.cluster import poisson_stream, serve
    from repro.network.torus import Torus3D
    from repro.simulator.runtime import DEFAULT_PARAMS

    machine = Torus3D(dims, DEFAULT_PARAMS)
    jobs = poisson_stream(njobs, rate=rate, seed=11,
                          sizes=sizes, weights=weights)
    serve(jobs, machine=machine, slot_grid=slot_grid, scheduler=scheduler,
          gamma=1e-11, max_retries=1)


#: The 64-slot stream pinned by tests/cluster/test_schedulers.py: ~80%
#: utilisation, so scheduling and queueing (not raw DES stepping)
#: dominate.
_STREAM_P64 = dict(dims=(4, 4, 4), slot_grid=(8, 8), njobs=40, rate=2000.0,
                   sizes=((256, 4), (384, 4), (512, 16), (1024, 64)),
                   weights=(5, 4, 3, 2))
#: 256-slot variant with jobs up to p=256 — the DES share grows but
#: the stream stays contended (~90% utilisation).
_STREAM_P256 = dict(dims=(4, 8, 8), slot_grid=(16, 16), njobs=80,
                    rate=2000.0,
                    sizes=((256, 4), (512, 16), (1024, 64), (2048, 256)),
                    weights=(5, 4, 3, 2))


FULL = {
    "des_summa_p128": (lambda: _des_summa(2048, (8, 16), 64, 128), 3),
    "des_hsumma_p128": (lambda: _des_hsumma(2048, (8, 16), 8, 64, 128), 3),
    "macro_cyclic_p16384": (lambda: _macro_cyclic(32768, (128, 128), 256), 1),
    "macro_cannon_p16384": (lambda: _macro_cannon(32768, 128), 1),
    "macro_dns3d_p16384": (lambda: _macro_dns3d(26624, 26), 2),
    "des_faulty_summa_p64": (lambda: _des_faulty_summa(1024, (8, 8), 64, 64), 3),
    "predictor_fig10_sweep": (
        lambda: _predictor_sweep(1 << 20, 1 << 22, 256), 3),
    "predictor_25d_sweep": (
        lambda: _predictor_25d_sweep(1 << 20, 1 << 22), 3),
    "planner_cold": (lambda: _planner_cold(16384, 16384), 1),
    "planner_plans_per_sec": (lambda: _planner_hot(16384, 16384), 3),
    "job_stream_fifo_p256": (
        lambda: _job_stream("fifo", **_STREAM_P256), 2),
    "job_stream_planner_p256": (
        lambda: _job_stream("planner", **_STREAM_P256), 2),
}

QUICK = {
    "des_summa_p64": (lambda: _des_summa(1024, (8, 8), 64, 64), 3),
    "des_hsumma_p64": (lambda: _des_hsumma(1024, (8, 8), 4, 64, 64), 3),
    "macro_cyclic_p1024": (lambda: _macro_cyclic(8192, (32, 32), 256), 2),
    "macro_cannon_p1024": (lambda: _macro_cannon(8192, 32), 2),
    "macro_dns3d_p512": (lambda: _macro_dns3d(2048, 8), 3),
    "des_faulty_summa_p16": (lambda: _des_faulty_summa(512, (4, 4), 64, 16), 3),
    # Same fig10-scale sweep as full mode: p = 2^20 costs the
    # predictor well under a second, so the smoke run keeps it whole.
    "predictor_fig10_sweep": (
        lambda: _predictor_sweep(1 << 20, 1 << 22, 256), 3),
    # The 2.5D chain sweep is zero-stepping, so quick mode runs it at
    # the full p = 2^20 scale too.
    "predictor_25d_sweep": (
        lambda: _predictor_25d_sweep(1 << 20, 1 << 22), 3),
    # Flagship-size cold plans pay multi-second macro refinement of the
    # segmented-family leaders, so the smoke run scales the planner
    # workloads down (the 100x cache gate applies at both sizes).
    "planner_cold": (lambda: _planner_cold(4096, 1024), 3),
    "planner_plans_per_sec": (lambda: _planner_hot(4096, 1024), 3),
    "job_stream_fifo_p64": (
        lambda: _job_stream("fifo", **_STREAM_P64), 3),
    "job_stream_planner_p64": (
        lambda: _job_stream("planner", **_STREAM_P64), 3),
}


def planner_cache_speedup(current):
    """Hot-vs-cold per-plan speedup from the two planner workloads, or
    None when either is missing."""
    cold = current.get("planner_cold")
    hot = current.get("planner_plans_per_sec")
    if not cold or not hot:
        return None
    return (cold / PLANNER_COLD_ITERS) / (hot / PLANNER_HOT_ITERS)


def measure(workloads):
    """Best-of-reps wall-clock per workload, in definition order."""
    out = {}
    for name, (fn, reps) in workloads.items():
        best = min(_time_one(fn) for _ in range(reps))
        out[name] = round(best, 4)
        print(f"  {name:24s} {best:8.3f} s  (best of {reps})")
    return out


def _time_one(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def load_baseline():
    try:
        return json.loads(BASELINE_PATH.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return {}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down smoke workloads (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail if any gate workload regressed "
                             f">{GATE_SLOWDOWN}x vs the committed baseline")
    parser.add_argument("--no-write", action="store_true",
                        help="measure only; leave BENCH_engine.json alone")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    workloads = QUICK if args.quick else FULL
    print(f"bench_speed ({mode} mode):")
    baseline = load_baseline()
    committed = baseline.get(mode, {})
    current = measure(workloads)

    cache_speedup = planner_cache_speedup(current)
    if cache_speedup is not None:
        print(f"  planner cache speedup    {cache_speedup:8.0f} x  "
              f"(hot vs cold, min {PLANNER_MIN_SPEEDUP:.0f}x)")

    # Regression gate — against the *committed* numbers, read above.
    status = 0
    if args.check:
        if cache_speedup is not None and cache_speedup < PLANNER_MIN_SPEEDUP:
            print(f"gate: FAIL — plan cache only {cache_speedup:.0f}x faster "
                  f"than cold planning (contract: >= "
                  f"{PLANNER_MIN_SPEEDUP:.0f}x)")
            status = 1
        for workload in GATE_WORKLOADS:
            old = committed.get(workload, {}).get("current")
            new = current.get(workload)
            if old is None or new is None:
                print(f"gate: no committed baseline for {workload}; skipped")
            elif new > GATE_SLOWDOWN * old:
                print(f"gate: FAIL — {workload} took {new:.3f} s, "
                      f"baseline {old:.3f} s ({new / old:.2f}x > "
                      f"{GATE_SLOWDOWN}x allowed)")
                status = 1
            else:
                print(f"gate: ok — {workload} {new:.3f} s vs baseline "
                      f"{old:.3f} s ({new / old:.2f}x)")

    if not args.no_write:
        section = {}
        for name, secs in current.items():
            seed = committed.get(name, {}).get("seed")
            entry = {"seed": seed, "current": secs}
            if seed:
                entry["speedup"] = round(seed / secs, 2)
            section[name] = entry
        if cache_speedup is not None:
            section["planner_cache_speedup"] = {
                "hot_vs_cold": round(cache_speedup, 1),
                "min_required": PLANNER_MIN_SPEEDUP,
            }
        baseline[mode] = section
        baseline["gate"] = {"workloads": list(GATE_WORKLOADS),
                            "max_slowdown": GATE_SLOWDOWN, "mode": "quick",
                            "planner_min_speedup": PLANNER_MIN_SPEEDUP}
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH.relative_to(REPO_ROOT)}")
    return status


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
