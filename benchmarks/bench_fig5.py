"""Figure 5: Grid5000, p=128, n=8192, b=B=64 — comm time vs group count.

Paper observation: with the small block size the latency term dominates
(128 steps); HSUMMA beats SUMMA at every interior G, with a large gap.
Reproduction criteria: HSUMMA(G) <= SUMMA for all G, equality at G in
{1, p}, minimum in the interior near sqrt(p).
"""

from conftest import run_once

from repro.experiments.figures import fig5


def test_fig5_group_sweep(benchmark, record_output, sweep_jobs, sweep_cache):
    series = run_once(benchmark, fig5,
                      jobs=sweep_jobs, cache=sweep_cache)
    best_g, best = series.min_of("hsumma_comm")
    summa = series.column("summa_comm")[0]
    lines = [
        series.to_table(
            "Figure 5 — Grid5000, n=8192, p=128, b=B=64 (comm time, s)"
        ),
        "",
        f"SUMMA comm time:          {summa:.4f} s",
        f"best HSUMMA comm time:    {best:.4f} s at G={best_g}",
        f"comm-time ratio:          {summa / best:.2f}x "
        "(paper measures a large gap at b=64)",
    ]
    record_output("fig5", "\n".join(lines))

    hs = series.column("hsumma_comm")
    assert hs[0] == series.x[0] * 0 + hs[0]  # table well-formed
    # Identity at the extremes; interior win (the paper's claims).
    assert abs(hs[0] - summa) / summa < 1e-9
    assert abs(hs[-1] - summa) / summa < 1e-9
    assert best < summa
    assert 1 < best_g < 128
