#!/usr/bin/env python
"""Demonstrate the parallel sweep executor: ``--jobs`` scaling + cache.

Runs a fig8-style multi-point group sweep (DES fidelity, p=128, all
valid power-of-two group counts) through
:func:`repro.experiments.figures.group_sweep` at several ``jobs``
values, verifies every run is bit-identical to the serial one, and
writes the wall-clock numbers to ``benchmarks/results/speed.txt``.

The sweep's points are independent full event simulations (~0.5 s
each), so on a k-core machine ``jobs=k`` approaches k-fold speedup;
the report includes the measured per-point fan-out overhead, which
bounds the achievable parallel efficiency, so the artifact is
meaningful even when regenerated on a small container.

Usage::

    python benchmarks/speed_sweep_demo.py
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "benchmarks" / "results" / "speed.txt"

SWEEP_N = 2048
SWEEP_P = 128
SWEEP_BLOCK = 64


def _run_sweep(jobs, cache=None):
    from repro.experiments.figures import group_sweep
    from repro.platforms.grid5000 import grid5000_graphene

    start = time.perf_counter()
    series = group_sweep(
        grid5000_graphene(SWEEP_P), SWEEP_P, SWEEP_N, SWEEP_BLOCK,
        coster_kind="des", name="speed-demo", jobs=jobs, cache=cache,
    )
    return time.perf_counter() - start, series


def main():
    import tempfile

    from repro.experiments.parallel import SweepCache

    ncores = os.cpu_count() or 1
    npoints = 1 + 8  # SUMMA reference + power-of-two group counts of p=128
    lines = [
        "Parallel sweep executor: --jobs scaling on a fig8-style sweep",
        "=" * 62,
        "",
        f"Sweep: group_sweep(grid5000_graphene({SWEEP_P}), p={SWEEP_P}, "
        f"n={SWEEP_N}, block={SWEEP_BLOCK}, coster_kind='des')",
        f"Points: {npoints} independent full-DES simulations "
        "(SUMMA ref + one HSUMMA run per group count)",
        f"Host: {ncores} core(s) visible to this run",
        "",
    ]

    t_serial, ref = _run_sweep(jobs=1)
    lines.append(f"  jobs=1 (serial)      {t_serial:7.2f} s")
    per_point = t_serial / npoints

    for jobs in (2, 4):
        t, series = _run_sweep(jobs=jobs)
        assert series.columns == ref.columns, "parallel run not bit-identical"
        speedup = t_serial / t
        ideal = min(jobs, ncores)
        lines.append(
            f"  jobs={jobs}               {t:7.2f} s   "
            f"{speedup:4.2f}x (ideal on this host: {ideal}x)")
        if jobs >= ncores:
            # Every core busy: the gap to ideal is pure fan-out overhead.
            overhead = max(0.0, t - t_serial / ideal) / npoints
            lines.append(
                f"      per-point fan-out overhead ~{overhead * 1e3:.0f} ms "
                f"vs ~{per_point * 1e3:.0f} ms of work "
                f"-> parallel efficiency bound "
                f"~{per_point / (per_point + overhead):.0%} per core")

    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)
        t_cold, series = _run_sweep(jobs=1, cache=cache)
        assert series.columns == ref.columns
        t_warm, series = _run_sweep(jobs=1, cache=cache)
        assert series.columns == ref.columns, "cache hit not bit-identical"
    lines += [
        "",
        f"  cache cold (fill)    {t_cold:7.2f} s",
        f"  cache warm (hit)     {t_warm:7.2f} s   "
        f"{t_cold / t_warm:5.1f}x",
        "",
        "All runs verified bit-identical to the serial sweep "
        "(Series.columns compared exactly).",
        "Points fan out over worker processes and merge in input order;"
        " on a k-core host jobs=k approaches the efficiency bound above."
        " Regenerate with: python benchmarks/speed_sweep_demo.py",
        "",
    ]

    report = "\n".join(lines)
    print(report)
    OUT_PATH.write_text(report)
    print(f"wrote {OUT_PATH.relative_to(REPO_ROOT)}")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
