"""Tables I and II plus the Section IV-C/V analytic-model validation.

Table I (binomial): HSUMMA's latency and bandwidth factors are the
*same* as SUMMA's for every G — the hierarchy is free but useless under
a log-everything broadcast.  Table II (Van de Geijn): at G = sqrt(p)
the latency factor collapses from ~2 sqrt(p) to ~4 p^(1/4) while the
bandwidth factor doubles — the trade the threshold test arbitrates.
"""

import math

from conftest import run_once

from repro.experiments.tables import (
    cost_table,
    table1,
    table2,
    validate_model,
)
from repro.models.broadcast_model import BINOMIAL_MODEL, VANDEGEIJN_MODEL
from repro.platforms import bluegene_p, exascale_2012, grid5000_graphene


def test_table1_binomial(benchmark, record_output):
    text = run_once(benchmark, table1)
    record_output("table1", text)
    rows = cost_table(65536, 16384, 256, BINOMIAL_MODEL, groups=[1, 128, 16384])
    summa = rows[0]
    for row in rows[1:]:
        assert row.latency_factor == summa.latency_factor
        assert row.bandwidth_factor == summa.bandwidth_factor


def test_table2_vandegeijn(benchmark, record_output):
    text = run_once(benchmark, table2)
    record_output("table2", text)
    n, p, b = 65536, 16384, 256
    rows = cost_table(n, p, b, VANDEGEIJN_MODEL, groups=[1, 128, 16384])
    # rows[0] is SUMMA; rows[1..3] are HSUMMA at G=1, 128, 16384.
    summa, g1, g_opt, gp = rows
    assert g1.latency_factor == summa.latency_factor
    assert gp.latency_factor == summa.latency_factor
    # The optimal row: latency collapses, bandwidth doubles (Table II).
    assert g_opt.latency_factor < summa.latency_factor / 4
    assert g_opt.bandwidth_factor > summa.bandwidth_factor
    assert g_opt.bandwidth_factor < 2.1 * summa.bandwidth_factor
    # Closed forms of the paper's Table II last row.
    assert g_opt.latency_factor == (
        math.log2(p) + 4 * (p**0.25 - 1)
    ) * n / b


def test_model_validation(benchmark, record_output):
    """Section IV-C / V: the threshold test on all three platforms."""

    def validate_all():
        checks = [
            (grid5000_graphene(), 8192, 128, 64),
            (bluegene_p(), 65536, 16384, 256),
            (exascale_2012(), 2**22, 2**20, 256),
        ]
        return [
            validate_model(p.name, n, pp, b, p.alpha, p.model_beta)
            for p, n, pp, b in checks
        ]

    reports = run_once(benchmark, validate_all)
    record_output(
        "model_validation", "\n".join(r.summary() for r in reports)
    )
    # The paper's conclusion on all three platforms: HSUMMA wins.
    assert all(r.hsumma_wins for r in reports)
    assert all(r.extremum == "minimum" for r in reports)
    # The quoted thresholds: 8192 (G5K), 2048 (BG/P), 2048 (exascale).
    assert reports[0].threshold == 8192
    assert reports[1].threshold == 2048
    assert reports[2].threshold == 2048
