"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper, prints it
(visible with ``pytest -s``) and also writes it under
``benchmarks/results/`` so the artefacts survive output capturing.
Wall-clock per benchmark additionally lands in
``benchmarks/results/bench_times.json``, so any full benchmark run
feeds the performance trajectory (see docs/performance.md).

Sweep-based benchmarks accept two suite-wide knobs:

* ``--sweep-jobs N`` — fan independent sweep points across N worker
  processes (results are bit-identical for every N).
* ``--sweep-cache`` — reuse previously computed sweep points from
  ``benchmarks/results/.cache/`` (content-addressed; entries invalidate
  automatically when anything that can change a result changes).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
TIMES_PATH = RESULTS_DIR / "bench_times.json"
CACHE_DIR = RESULTS_DIR / ".cache"


def pytest_addoption(parser):
    parser.addoption(
        "--sweep-jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sweep points (default 1)",
    )
    parser.addoption(
        "--sweep-cache", action="store_true",
        help="reuse cached sweep points from benchmarks/results/.cache/",
    )


@pytest.fixture
def sweep_jobs(request) -> int:
    return request.config.getoption("--sweep-jobs")


@pytest.fixture
def sweep_cache(request):
    """A SweepCache under benchmarks/results/.cache/, or None when the
    run did not opt in with --sweep-cache."""
    if not request.config.getoption("--sweep-cache"):
        return None
    from repro.experiments.parallel import SweepCache

    return SweepCache(CACHE_DIR)


@pytest.fixture
def record_output():
    """Return a writer: ``record_output(name, text)`` prints ``text``
    and stores it at ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return write


def _record_time(name: str, seconds: float) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    try:
        times = json.loads(TIMES_PATH.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        times = {}
    times[name] = round(seconds, 6)
    TIMES_PATH.write_text(json.dumps(times, indent=2, sort_keys=True) + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The reproduction sweeps are deterministic simulations — repeating
    them only reruns identical arithmetic — so one round is both honest
    and fast.  Wall-clock is also appended to
    ``benchmarks/results/bench_times.json`` keyed by benchmark name, so
    every benchmark run contributes a point to the speed trajectory.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    _record_time(benchmark.name, time.perf_counter() - start)
    return result
