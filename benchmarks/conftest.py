"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper, prints it
(visible with ``pytest -s``) and also writes it under
``benchmarks/results/`` so the artefacts survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_output():
    """Return a writer: ``record_output(name, text)`` prints ``text``
    and stores it at ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return write


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The reproduction sweeps are deterministic simulations — repeating
    them only reruns identical arithmetic — so one round is both honest
    and fast.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
