"""Ablation: the strong-scaling limit — the paper's motivation, as a
number.

Section I motivates HSUMMA with the claim that communication will
dominate matmul at exascale.  Using the BG/P model parameters we
compute, per processor count, the communication fraction of the total
time for SUMMA and best-G HSUMMA, and the *scalability limit* — the p
at which communication exceeds half the runtime.  HSUMMA moving that
limit out by a factor >= 4 is the quantitative form of "our algorithm
will be more scalable than SUMMA".
"""

from conftest import run_once

from repro.models.scaling import scalability_limit, strong_scaling
from repro.util.tables import format_table

N = 65536
ARGS = dict(b=256, alpha=3e-6, beta=1e-9, gamma=3.7e-10)
PROCS = [2**k for k in range(10, 21, 2)]  # 1024 .. 1M


def sweep():
    points = strong_scaling(N, PROCS, **ARGS)
    limit_s = scalability_limit(N, **ARGS, algorithm="summa")
    limit_h = scalability_limit(N, **ARGS, algorithm="hsumma")
    return points, limit_s, limit_h


def test_strong_scaling_limit(benchmark, record_output):
    points, limit_s, limit_h = run_once(benchmark, sweep)
    rows = [
        [pt.p, pt.compute, pt.summa_comm, pt.hsumma_comm,
         pt.summa_comm_fraction, pt.hsumma_comm_fraction]
        for pt in points
    ]
    text = format_table(
        ["p", "compute_s", "summa_comm_s", "hsumma_comm_s",
         "summa comm frac", "hsumma comm frac"],
        rows,
        title=f"Ablation — strong scaling at n={N} (BG/P model parameters)",
    ) + (
        f"\n\ncommunication dominates (>50%) from p={limit_s} (SUMMA) "
        f"vs p={limit_h} (HSUMMA): the hierarchy extends the scaling "
        f"range {limit_h // limit_s}x"
    )
    record_output("ablation_scaling", text)

    # The motivation: comm fraction grows monotonically with p.
    fracs = [pt.summa_comm_fraction for pt in points]
    assert all(b > a for a, b in zip(fracs, fracs[1:]))
    # The claim: HSUMMA extends the scaling limit substantially.
    assert limit_h >= 4 * limit_s
    # And never has the larger comm fraction anywhere.
    for pt in points:
        assert pt.hsumma_comm_fraction <= pt.summa_comm_fraction + 1e-12