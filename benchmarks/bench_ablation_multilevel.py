"""Ablation: more than two hierarchy levels (paper future work).

The conclusions suggest >2 levels could perform even better.  With the
Van de Geijn broadcast the two-level optimum turns the 2 sqrt(p)
latency term into 4 p^(1/4); an h-level hierarchy gives 2h p^(1/2h),
minimised near h = ln(sqrt(p)).  We measure 1-, 2- and 3-level runs on
a latency-dominated platform point and check the predicted ordering.
"""

from conftest import run_once


from repro.blocks.dmatrix import DistMatrix
from repro.core.hsumma import MultiLevelConfig, hsumma_multilevel_program
from repro.mpi.comm import CollectiveOptions, MpiContext
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine
from repro.util.tables import format_table

# Latency-dominated: alpha huge relative to message sizes.
PARAMS = HockneyParams(alpha=1e-3, beta=1e-10)
N = 1024
S = T = 16  # p = 256
BLOCK = 16
VDG = CollectiveOptions(bcast="vandegeijn")


def _run(row_factors, col_factors, blocks):
    cfg = MultiLevelConfig(m=N, l=N, n=N, s=S, t=T,
                           row_factors=row_factors,
                           col_factors=col_factors,
                           blocks=blocks, bcast="vandegeijn")
    nranks = S * T
    da = DistMatrix.phantom_global(N, N, S, T)
    db = DistMatrix.phantom_global(N, N, S, T)
    programs = []
    for rank in range(nranks):
        i, j = divmod(rank, T)
        ctx = MpiContext(rank, nranks, options=VDG)
        programs.append(
            hsumma_multilevel_program(ctx, da.tile(i, j), db.tile(i, j), cfg)
        )
    sim = Engine(HomogeneousNetwork(nranks, PARAMS)).run(programs)
    return sim.total_time


def sweep():
    return {
        "1 level (SUMMA)": _run((16,), (16,), (BLOCK,)),
        "2 levels (4x4 groups)": _run((4, 4), (4, 4), (BLOCK, BLOCK)),
        "3 levels (2x2x4)": _run((2, 2, 4), (2, 2, 4),
                                 (BLOCK, BLOCK, BLOCK)),
    }


def test_multilevel_hierarchy(benchmark, record_output):
    times = run_once(benchmark, sweep)
    text = format_table(
        ["hierarchy", "total_s"],
        [[k, v] for k, v in times.items()],
        title=(
            f"Ablation — hierarchy depth (p={S*T}, n={N}, b={BLOCK}, "
            "latency-dominated platform)"
        ),
    )
    record_output("ablation_multilevel", text)

    one = times["1 level (SUMMA)"]
    two = times["2 levels (4x4 groups)"]
    three = times["3 levels (2x2x4)"]
    # Two levels beat one (the paper's theorem), and on a latency-
    # dominated platform a third level helps again (the future-work
    # conjecture holds under this model).
    assert two < one
    assert three < two
