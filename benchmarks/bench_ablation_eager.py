"""Ablation: eager vs rendezvous point-to-point protocol.

The paper's model implicitly assumes rendezvous (both endpoints busy
for ``alpha + m*beta``).  Real MPI sends small messages eagerly, which
decouples the sender from a late receiver.  We quantify the effect on
SUMMA's virtual times: with a large eager threshold, pivot owners
finish their tree sends without waiting for slow receivers, shrinking
the exposed communication time — but the *relative* SUMMA-vs-HSUMMA
comparison is protocol-independent (both shift together), supporting
the paper's choice to analyse under plain Hockney.
"""

import pytest
from conftest import run_once

from repro.blocks.dmatrix import DistMatrix
from repro.core.hsumma import HSummaConfig, hsumma_program
from repro.core.summa import SummaConfig, summa_program
from repro.mpi.comm import CollectiveOptions, MpiContext
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")
N, S, T, BLOCK, GROUPS = 512, 8, 8, 16, (4, 4)


def _run(program_factory, cfg, eager):
    da = DistMatrix.phantom_global(N, N, S, T)
    db = DistMatrix.phantom_global(N, N, S, T)
    programs = [
        program_factory(
            MpiContext(r, S * T, options=VDG, gamma=2e-9),
            da.tile(*divmod(r, T)), db.tile(*divmod(r, T)), cfg,
        )
        for r in range(S * T)
    ]
    engine = Engine(
        HomogeneousNetwork(S * T, PARAMS),
        eager_threshold=(1 << 30) if eager else 0,
    )
    return engine.run(programs)


def run_variants():
    scfg = SummaConfig(m=N, l=N, n=N, s=S, t=T, block=BLOCK)
    hcfg = HSummaConfig(m=N, l=N, n=N, s=S, t=T, I=GROUPS[0], J=GROUPS[1],
                        outer_block=BLOCK, inner_block=BLOCK)
    out = {}
    for eager in (False, True):
        key = "eager" if eager else "rendezvous"
        out[f"summa/{key}"] = _run(summa_program, scfg, eager)
        out[f"hsumma/{key}"] = _run(hsumma_program, hcfg, eager)
    return out


def test_eager_protocol(benchmark, record_output):
    sims = run_once(benchmark, run_variants)
    rows = [[k, v.total_time, v.comm_time] for k, v in sims.items()]
    ratio_r = (sims["summa/rendezvous"].comm_time
               / sims["hsumma/rendezvous"].comm_time)
    ratio_e = sims["summa/eager"].comm_time / sims["hsumma/eager"].comm_time
    text = format_table(
        ["variant", "total_s", "comm_s"],
        rows,
        title=f"Ablation — eager vs rendezvous (p=64, n={N}, b=B={BLOCK})",
    ) + (
        f"\n\nSUMMA/HSUMMA comm ratio: rendezvous {ratio_r:.2f}x, "
        f"eager {ratio_e:.2f}x"
    )
    record_output("ablation_eager", text)

    # Eager never hurts in this no-contention setting.
    assert sims["summa/eager"].total_time <= (
        sims["summa/rendezvous"].total_time * 1.001
    )
    # The SUMMA-vs-HSUMMA verdict is protocol-independent (within 25%).
    assert ratio_e == pytest.approx(ratio_r, rel=0.25)