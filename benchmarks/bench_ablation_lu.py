"""Ablation: hierarchical panel broadcasts in LU ("HLU", paper future
work: "apply the same approach to other numerical linear algebra
kernels such as QR/LU factorization").

Block LU's panel broadcasts have the same pivot row/column structure as
SUMMA, so the two-level grouping should cut their latency the same way.
Criteria: identical factors (tested in the unit suite); lower comm time
with grouping under the Van de Geijn broadcast; the win grows as the
block size shrinks (latency-bound regime), mirroring Fig 5 vs Fig 6.
"""

from conftest import run_once

from repro.factorization import run_block_lu
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")
N, GRID, GROUPS = 2048, (8, 8), (4, 4)


def sweep():
    out = {}
    for block in (16, 32, 64):
        A = PhantomArray((N, N))
        _, _, flat = run_block_lu(A, grid=GRID, block=block,
                                  params=PARAMS, options=VDG)
        _, _, hier = run_block_lu(A, grid=GRID, block=block, groups=GROUPS,
                                  params=PARAMS, options=VDG)
        out[block] = (flat.comm_time, hier.comm_time)
    return out


def qr_sweep():
    from repro.factorization import run_block_qr

    out = {}
    for block in (32, 64):
        A = PhantomArray((N // 2, N // 2))
        _, flat = run_block_qr(A, grid=GRID, block=block,
                               params=PARAMS, options=VDG)
        _, hier = run_block_qr(A, grid=GRID, block=block, groups=GROUPS,
                               params=PARAMS, options=VDG)
        out[block] = (flat.comm_time, hier.comm_time)
    return out


def test_hierarchical_lu(benchmark, record_output):
    results = run_once(benchmark, sweep)
    rows = [
        [b, flat, hier, flat / hier]
        for b, (flat, hier) in sorted(results.items())
    ]
    text = format_table(
        ["block b", "LU comm_s", "HLU comm_s", "ratio"],
        rows,
        title=(
            f"Ablation — hierarchical LU panel broadcasts "
            f"(p=64, n={N}, groups {GROUPS[0]}x{GROUPS[1]}, vdg)"
        ),
    )
    record_output("ablation_lu", text)

    ratios = []
    for b, (flat, hier) in sorted(results.items()):
        assert hier < flat, f"HLU must win at block {b}"
        ratios.append(flat / hier)
    # Smaller blocks -> more panel broadcasts -> bigger hierarchy win.
    assert ratios[0] >= ratios[-1]


def test_hierarchical_qr(benchmark, record_output):
    results = run_once(benchmark, qr_sweep)
    rows = [
        [b, flat, hier, flat / hier]
        for b, (flat, hier) in sorted(results.items())
    ]
    text = format_table(
        ["block b", "QR comm_s", "HQR comm_s", "ratio"],
        rows,
        title=(
            f"Ablation — hierarchical QR panel broadcasts "
            f"(p=64, n={N // 2}, groups {GROUPS[0]}x{GROUPS[1]}, vdg)"
        ),
    )
    record_output("ablation_qr", text)
    for b, (flat, hier) in results.items():
        assert hier < flat, f"HQR must win at block {b}"