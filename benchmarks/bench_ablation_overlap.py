"""Ablation: communication/computation overlap (paper future work).

The paper: "until now we got all these improvements without overlapping
the communications ... on the virtual hierarchies."  We measure the
one-step-lookahead schedules of :mod:`repro.core.overlap` against the
paper's no-overlap schedules at a point where per-step communication
and computation are comparable — the regime where overlap matters.

Criteria: overlap never slower; at the balanced point the total
approaches the ``max(comm, compute)`` lower bound.  A noteworthy
finding the paper's future-work section does not anticipate: once
lookahead hides essentially *all* communication, the hierarchy's
advantage disappears — summa+overlap and hsumma+overlap both sit at the
compute bound, within a fraction of a percent of each other.  The
hierarchy matters again exactly when communication cannot be fully
hidden (comm > compute), which is the exascale regime the paper
targets.
"""

from conftest import run_once

from repro.core.hsumma import run_hsumma
from repro.core.overlap import run_hsumma_overlap, run_summa_overlap
from repro.core.summa import run_summa
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")
N, GRID, BLOCK, G = 1024, (8, 8), 32, 8
GAMMA = 2e-9  # balances per-step comm and compute at this point


def run_variants():
    A, B = PhantomArray((N, N)), PhantomArray((N, N))
    kw = dict(params=PARAMS, options=VDG, gamma=GAMMA)
    out = {}
    _, sim = run_summa(A, B, grid=GRID, block=BLOCK, **kw)
    out["summa"] = sim
    _, sim = run_summa_overlap(A, B, grid=GRID, block=BLOCK, **kw)
    out["summa+overlap"] = sim
    _, sim = run_hsumma(A, B, grid=GRID, groups=G, outer_block=BLOCK, **kw)
    out["hsumma"] = sim
    _, sim = run_hsumma_overlap(A, B, grid=GRID, groups=G,
                                outer_block=BLOCK, **kw)
    out["hsumma+overlap"] = sim
    return out


def test_overlap_schedules(benchmark, record_output):
    sims = run_once(benchmark, run_variants)
    rows = [
        [name, sim.total_time, sim.comm_time, sim.compute_time]
        for name, sim in sims.items()
    ]
    bound = max(sims["summa"].comm_time, sims["summa"].compute_time)
    text = format_table(
        ["schedule", "total_s", "exposed_comm_s", "compute_s"],
        rows,
        title=(
            f"Ablation — lookahead overlap (p=64, n={N}, b=B={BLOCK}, "
            f"G={G}, vdg broadcast)"
        ),
    ) + f"\n\nmax(comm, compute) lower bound: {bound:.5f} s"
    record_output("ablation_overlap", text)

    assert sims["summa+overlap"].total_time <= sims["summa"].total_time
    assert sims["hsumma+overlap"].total_time <= sims["hsumma"].total_time
    # Lookahead hides most of the communication.
    assert sims["summa+overlap"].comm_time < sims["summa"].comm_time / 2
    # Without overlap the hierarchy wins; with full overlap both land
    # on the compute bound, indistinguishable to ~1%.
    assert sims["hsumma"].total_time < sims["summa"].total_time
    bound = sims["summa"].compute_time
    assert sims["summa+overlap"].total_time < bound * 1.1
    assert sims["hsumma+overlap"].total_time < bound * 1.1
    gap = abs(sims["hsumma+overlap"].total_time
              - sims["summa+overlap"].total_time)
    assert gap < 0.02 * bound