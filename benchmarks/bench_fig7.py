"""Figure 7: Grid5000 scalability — comm time vs p in {16,32,64,128},
b=B=512.

Paper observation: SUMMA and HSUMMA coincide on small platforms; the
gap opens as p grows (HSUMMA is more scalable).  Reproduction criteria:
equal at p=16, HSUMMA <= SUMMA everywhere, and the HSUMMA/SUMMA ratio
improves monotonically with p.
"""

from conftest import run_once

from repro.experiments.figures import fig7


def test_fig7_scalability(benchmark, record_output, sweep_jobs, sweep_cache):
    series = run_once(benchmark, fig7,
                      jobs=sweep_jobs, cache=sweep_cache)
    hs = series.column("hsumma_comm")
    su = series.column("summa_comm")
    ratios = [s / h for s, h in zip(su, hs)]
    lines = [
        series.to_table(
            "Figure 7 — Grid5000 scalability, n=8192, b=B=512 (comm time, s)"
        ),
        "",
        "SUMMA/HSUMMA ratios per p: "
        + ", ".join(f"p={p}: {r:.2f}x" for p, r in zip(series.x, ratios)),
    ]
    record_output("fig7", "\n".join(lines))

    # Same at the smallest platform (paper: "on small platforms both
    # have the same performance").
    assert ratios[0] < 1.02
    # HSUMMA never loses, and the advantage grows with p.
    assert all(h <= s * (1 + 1e-9) for h, s in zip(hs, su))
    assert ratios[-1] > ratios[0]
