"""Ablation: heterogeneous platforms (the paper's SUMMA-lineage refs
[9]/[10] territory).

Three questions on a mixed-speed machine:

1. how much does speed-proportional partitioning buy over the naive
   uniform split? (the classic heterogeneous-load-balancing result)
2. does the paper's hierarchical broadcast trick still help when the
   ranks are heterogeneous? (HSUMMA composes with heterogeneity)
3. how does the gain scale with the speed spread?
"""

from conftest import run_once

from repro.hetero import run_hetero_summa1d
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")
N, BLOCK = 1024, 32
BASE_GAMMA = 5e-9


def sweep():
    A, B = PhantomArray((N, N)), PhantomArray((N, N))
    out = {}
    for spread in (1, 2, 4, 8):
        speeds = [1.0, float(spread)] * 8  # 16 ranks, two classes
        kw = dict(block=BLOCK, params=PARAMS, base_gamma=BASE_GAMMA,
                  options=VDG)
        _, balanced = run_hetero_summa1d(A, B, speeds=speeds, **kw)
        _, naive = run_hetero_summa1d(
            A, B, speeds=speeds, partition_speeds=[1.0] * 16, **kw
        )
        _, hier = run_hetero_summa1d(A, B, speeds=speeds, groups=4, **kw)
        out[spread] = (naive.total_time, balanced.total_time,
                       hier.total_time, balanced.comm_time, hier.comm_time)
    return out


def test_heterogeneous_summa(benchmark, record_output):
    results = run_once(benchmark, sweep)
    rows = [
        [spread, naive, bal, hier, naive / bal]
        for spread, (naive, bal, hier, _, _) in sorted(results.items())
    ]
    text = format_table(
        ["speed spread", "naive_total_s", "balanced_total_s",
         "balanced+groups_total_s", "naive/balanced"],
        rows,
        title=(
            f"Ablation — heterogeneous 1-D SUMMA (16 ranks, n={N}, "
            f"b={BLOCK}, vdg broadcast)"
        ),
    )
    record_output("ablation_hetero", text)

    # Spread 1 == homogeneous: partitioning indifferent.
    naive1, bal1, *_ = results[1]
    assert abs(naive1 - bal1) < 1e-9
    # The balanced gain grows with the spread.
    gains = [results[s][0] / results[s][1] for s in (1, 2, 4, 8)]
    assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > 1.3
    # Hierarchical broadcasts reduce comm on the heterogeneous machine.
    for spread in (2, 4, 8):
        _, _, _, bal_comm, hier_comm = results[spread]
        assert hier_comm < bal_comm