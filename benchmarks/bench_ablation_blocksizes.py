"""Ablation: the b < B regime the paper allows but never measures.

Section III: the inner block size must satisfy ``b <= B``; the paper's
experiments set ``b = B``.  Splitting the sizes trades inner-level
latency (more inner steps) against outer-level latency (fewer outer
broadcasts).  We sweep (B, b) pairs at the Grid5000 point and report
the best combination, verifying the model's claim that increasing B at
fixed b only reduces the outer latency term.
"""

from conftest import run_once

from repro.core.hsumma import HSummaConfig
from repro.experiments.stepmodel import AnalyticCoster, hsumma_step_model
from repro.platforms.grid5000 import GRAPHENE_PARAMS
from repro.util.tables import format_table

P, N = 128, 8192
S, T = 8, 16
G_I, G_J = 4, 4  # G = 16, the Figure-5 optimum


def sweep():
    coster = AnalyticCoster(GRAPHENE_PARAMS, "vandegeijn")
    out = {}
    for B in (64, 128, 256, 512):
        for b in (16, 32, 64, 128, 256, 512):
            if b > B or B > N // T:
                continue
            cfg = HSummaConfig(m=N, l=N, n=N, s=S, t=T, I=G_I, J=G_J,
                               outer_block=B, inner_block=b)
            out[(B, b)] = hsumma_step_model(cfg, coster).comm_time
    return out


def test_block_size_split(benchmark, record_output):
    times = run_once(benchmark, sweep)
    rows = [[B, b, t] for (B, b), t in sorted(times.items())]
    text = format_table(
        ["outer B", "inner b", "comm_s"],
        rows,
        title=f"Ablation — outer/inner block split (Grid5000, p={P}, n={N}, G=16)",
    )
    best = min(times, key=times.get)
    record_output(
        "ablation_blocksizes",
        text + f"\n\nbest (B, b) = {best} at {times[best]:.4f} s",
    )

    # At fixed b, a larger outer block never hurts (fewer outer steps).
    for b in (16, 32, 64):
        series = [times[(B, b)] for B in (64, 128, 256, 512) if (B, b) in times]
        assert all(x >= y - 1e-12 for x, y in zip(series, series[1:]))
    # b = B = 512 (the paper's Figure-6 setting) is NOT optimal when the
    # split is allowed: some b < B beats it on latency-bound Graphene.
    assert times[best] <= times[(512, 512)]
