"""Ablation: topology-aware grouping on the torus (the Figure-8 zigzags).

The paper attributes the zigzags of Figure 8 to the mapping of the
communication layout onto the torus, and reports that preliminary
observations suggest platform-aware grouping removes them.  We compare
three rank-to-node mappings on a BG/P-like torus at the same G:

* default block mapping (the paper's setting — rows wrap around torus),
* group-aligned mapping (each HSUMMA group contiguous in node space),
* adversarial shuffled mapping.

Criterion: group-aligned <= default <= shuffled for the HSUMMA comm
time at the optimal G.
"""

from conftest import run_once

from repro.core.grouping import choose_group_grid, group_aligned_mapping
from repro.core.hsumma import HSummaConfig
from repro.experiments.stepmodel import TopologyCoster, hsumma_step_model
from repro.network.mapping import shuffled_mapping
from repro.network.torus import Torus3D
from repro.platforms.bluegene import (
    BGP_PARAMS,
    RANKS_PER_NODE,
    bluegene_p,
    torus_dims_for,
)
from repro.util.tables import format_table

P, N, B = 1024, 16384, 64
S = T = 32
G = 32  # near sqrt(p)


def run_mappings():
    I, J = choose_group_grid(S, T, G)
    cfg = HSummaConfig(m=N, l=N, n=N, s=S, t=T, I=I, J=J,
                       outer_block=B, inner_block=B)
    dims = torus_dims_for(P // RANKS_PER_NODE)
    mappings = {
        "default-block": None,
        "group-aligned": group_aligned_mapping(S, T, I, J, RANKS_PER_NODE),
        "shuffled": shuffled_mapping(P, RANKS_PER_NODE, seed=42),
    }
    out = {}
    for name, mapping in mappings.items():
        net = Torus3D(dims, BGP_PARAMS, ranks_per_node=RANKS_PER_NODE,
                      mapping=mapping)
        coster = TopologyCoster(net, "vandegeijn")
        out[name] = hsumma_step_model(cfg, coster).comm_time
    return out


def fig8_scale_smoothing():
    """The Figure-8 zigzag study at the paper's full 16384-core scale:
    sweep G with the default block mapping vs a per-G group-aligned
    mapping and compare the curves' raggedness."""
    from repro.platforms.bluegene import bluegene_p

    p, n, b = 16384, 65536, 256
    s = t = 128
    platform = bluegene_p(p)
    groups = [2**k for k in range(2, 13)]  # interior of the sweep
    dims = torus_dims_for(p // RANKS_PER_NODE)
    default_curve, aligned_curve = [], []
    for G in groups:
        I, J = choose_group_grid(s, t, G)
        cfg = HSummaConfig(m=n, l=n, n=n, s=s, t=t, I=I, J=J,
                           outer_block=b, inner_block=b)
        net_default = platform.network(p)
        coster = TopologyCoster(net_default, "vandegeijn")
        default_curve.append(hsumma_step_model(cfg, coster).comm_time)
        net_aligned = Torus3D(
            dims, BGP_PARAMS, ranks_per_node=RANKS_PER_NODE,
            mapping=group_aligned_mapping(s, t, I, J, RANKS_PER_NODE),
        )
        coster = TopologyCoster(net_aligned, "vandegeijn")
        aligned_curve.append(hsumma_step_model(cfg, coster).comm_time)
    return groups, default_curve, aligned_curve


def _raggedness(curve):
    """Total second-difference magnitude — zero for a smooth trend."""
    seconds = [curve[i + 1] - 2 * curve[i] + curve[i - 1]
               for i in range(1, len(curve) - 1)]
    return sum(abs(x) for x in seconds)


def test_fig8_scale_zigzag_smoothing(benchmark, record_output):
    groups, default_curve, aligned_curve = run_once(
        benchmark, fig8_scale_smoothing
    )
    rows = [
        [g, d, a] for g, d, a in zip(groups, default_curve, aligned_curve)
    ]
    rag_d = _raggedness(default_curve)
    rag_a = _raggedness(aligned_curve)
    text = format_table(
        ["G", "default mapping comm_s", "group-aligned comm_s"],
        rows,
        title=(
            "Ablation — zigzag smoothing at Figure-8 scale "
            "(p=16384, n=65536, b=B=256)"
        ),
    ) + (
        f"\n\nraggedness (sum |second differences|): "
        f"default {rag_d:.4f}, aligned {rag_a:.4f}"
    )
    record_output("ablation_mapping_fig8", text)

    # The aligned curve is at least as smooth (the paper's conjecture
    # that platform-aware grouping tames the zigzags)...
    assert rag_a <= rag_d * (1 + 1e-9)
    # ...never costs more than a small margin anywhere (aligning groups
    # trades a little inter-group locality for intra-group locality —
    # nearly free; improvements can be large)...
    for d, a in zip(default_curve, aligned_curve):
        assert a <= d * 1.03
    # ...and wins clearly where the default is most ragged (large G:
    # many small groups scattered across the torus).
    assert aligned_curve[-1] < default_curve[-1] * 0.95


def test_topology_aware_grouping(benchmark, record_output):
    times = run_once(benchmark, run_mappings)
    text = format_table(
        ["mapping", "hsumma_comm_s"],
        [[k, v] for k, v in times.items()],
        title=(
            f"Ablation — rank mapping on the torus (p={P}, G={G}, "
            f"n={N}, b=B={B})"
        ),
    )
    record_output("ablation_mapping", text)

    assert times["group-aligned"] <= times["default-block"] * (1 + 1e-9)
    assert times["default-block"] <= times["shuffled"] * (1 + 1e-9)
    # Aligning groups buys a real improvement over the adversary.
    assert times["group-aligned"] < times["shuffled"]
