"""Robustness experiment: HSUMMA vs SUMMA on a machine with sick links.

The paper evaluates both algorithms on healthy networks; here we
degrade ``k`` links (both directions, 8x latency and 8x inverse
bandwidth) on a p=64 grid and compare communication times under the
paper's large-message broadcast pairing (van de Geijn).  SUMMA's
grid-row broadcasts span the whole row, so one degraded link poisons
every ring that crosses it; HSUMMA's two-level scheme confines most
ring traffic inside groups, so its relative win *grows* once the
network sickens (see docs/robustness.md).

Runs in PhantomArray scale mode on the DES backend (the macro backend
rejects fault schedules).
"""

from conftest import run_once

from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.faults import FaultSchedule, LinkDegradation
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
OPTS = CollectiveOptions(bcast="vandegeijn")
N = 1024
S = T = 8  # p = 64
BLOCK = N // S
GROUPS = 8  # sqrt(p), the paper's optimum
DEGRADED_KS = (0, 1, 4)
FACTOR = 8.0


def _schedule(k: int) -> FaultSchedule:
    """``k`` degraded links, both directions, spread across grid rows."""
    faults = []
    for i in range(k):
        a, b = (S + 1) * i, (S + 1) * i + 1  # one link per grid row
        faults.append(LinkDegradation(alpha_mult=FACTOR, beta_mult=FACTOR,
                                      src=a, dst=b))
        faults.append(LinkDegradation(alpha_mult=FACTOR, beta_mult=FACTOR,
                                      src=b, dst=a))
    return FaultSchedule(seed=0, faults=faults)


def sweep():
    A, B = PhantomArray((N, N)), PhantomArray((N, N))
    out = {}
    for k in DEGRADED_KS:
        faults = _schedule(k)
        _, summa = run_summa(A, B, grid=(S, T), block=BLOCK, params=PARAMS,
                             options=OPTS, faults=faults)
        _, hsumma = run_hsumma(A, B, grid=(S, T), groups=GROUPS,
                               outer_block=BLOCK, params=PARAMS,
                               options=OPTS, faults=faults)
        out[k] = (summa, hsumma)
    return out


def test_hsumma_win_grows_on_degraded_links(benchmark, record_output):
    results = run_once(benchmark, sweep)
    rows = []
    for k, (summa, hsumma) in results.items():
        rows.append([k, summa.comm_time, hsumma.comm_time,
                     summa.comm_time / hsumma.comm_time,
                     summa.total_fault_delay, hsumma.total_fault_delay])
    text = format_table(
        ["degraded_links", "summa_comm", "hsumma_comm", "ratio",
         "summa_fault_delay", "hsumma_fault_delay"],
        rows,
        title=(f"Degraded links — SUMMA vs HSUMMA comm time "
               f"(p=64, n={N}, b=B={BLOCK}, G={GROUPS}, vandegeijn bcast, "
               f"{FACTOR:g}x degradation)"),
    )
    record_output("degraded_links", text)

    clean_ratio = rows[0][3]
    for k, (summa, hsumma) in results.items():
        # HSUMMA never loses, healthy or sick.
        assert hsumma.comm_time <= summa.comm_time * (1 + 1e-9), k
        if k == 0:
            assert not summa.faulted and not hsumma.faulted
        else:
            # Degradation costs both algorithms time...
            s0, h0 = results[0]
            assert summa.comm_time > s0.comm_time
            assert hsumma.comm_time > h0.comm_time
            assert summa.total_fault_delay > 0
            # ...but hurts the flat algorithm more: the hierarchy
            # localises the damage, widening HSUMMA's relative win.
            assert summa.comm_time / hsumma.comm_time > clean_ratio, k
