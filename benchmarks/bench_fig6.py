"""Figure 6: Grid5000, p=128, n=8192, b=B=512 — comm time vs group count.

Paper observation: with the largest block (fewest steps) the gap
narrows to ~1.6x but HSUMMA still wins.  Reproduction criteria: HSUMMA
wins at some interior G; the ratio is smaller than the b=64 ratio of
Figure 5.
"""

from conftest import run_once

from repro.experiments.figures import fig5, fig6


def test_fig6_group_sweep(benchmark, record_output, sweep_jobs, sweep_cache):
    series = run_once(benchmark, fig6,
                      jobs=sweep_jobs, cache=sweep_cache)
    best_g, best = series.min_of("hsumma_comm")
    summa = series.column("summa_comm")[0]
    ratio = summa / best

    # Figure 5's ratio for the comparison (cheap: cached by micro-DES).
    s5 = fig5()
    ratio5 = s5.column("summa_comm")[0] / s5.min_of("hsumma_comm")[1]

    lines = [
        series.to_table(
            "Figure 6 — Grid5000, n=8192, p=128, b=B=512 (comm time, s)"
        ),
        "",
        f"SUMMA comm time:       {summa:.4f} s",
        f"best HSUMMA comm time: {best:.4f} s at G={best_g}",
        f"comm-time ratio:       {ratio:.2f}x (paper: 1.6x; "
        f"b=64 ratio here: {ratio5:.2f}x)",
    ]
    record_output("fig6", "\n".join(lines))

    assert best < summa
    # The large block softens the win, as in the paper.
    assert ratio < ratio5
