"""Figure 9: BlueGene/P scalability — comm time vs p in
{2048, 4096, 8192, 16384}, n=65536, b=B=256.

Paper observation (measured): HSUMMA's comm time improves on SUMMA's
more and more as p grows (2.08x at 2048, 5.89x at 16384).  The paper's
own Hockney threshold ``alpha/beta > 2nb/p`` only passes at p=16384
(3000 > 2048) — at p in {2048, 4096, 8192} the model predicts parity
(the measured gains there come from congestion effects beyond Hockney;
see the contention ablation).  Reproduction criteria: parity at small
p, a strict win at 16384, and a ratio that is non-decreasing in p.
"""

from conftest import run_once

from repro.experiments.figures import fig9


def test_fig9_bgp_scalability(benchmark, record_output, sweep_jobs, sweep_cache):
    series = run_once(benchmark, fig9,
                      jobs=sweep_jobs, cache=sweep_cache)
    hs = series.column("hsumma_comm")
    su = series.column("summa_comm")
    ratios = [s / h for s, h in zip(su, hs)]
    lines = [
        series.to_table(
            "Figure 9 — BlueGene/P scalability, n=65536, b=B=256 (comm, s)"
        ),
        "",
        "SUMMA/HSUMMA ratios per p: "
        + ", ".join(f"p={p}: {r:.2f}x" for p, r in zip(series.x, ratios)),
        "(paper measured 2.08x at p=2048 and 5.89x at p=16384; the "
        "Hockney model predicts parity below p=16384 — see docstring)",
    ]
    record_output("fig9", "\n".join(lines))

    # HSUMMA never worse, ratio non-decreasing, strict win at 16384.
    assert all(h <= s * (1 + 1e-9) for h, s in zip(hs, su))
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 1.05
