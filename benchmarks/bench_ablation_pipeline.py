#!/usr/bin/env python
"""Ablation: pipelined overlap-SUMMA vs bulk-synchronous HSUMMA.

ISSUE 8's crossover chart.  For a grid of ``(n, p, alpha/beta)``
regimes — latency-bound, balanced, bandwidth-bound — we race:

* **bulk HSUMMA**: the paper's hierarchical schedule, best of the
  binomial/vandegeijn broadcasts, no overlap;
* **pipelined overlap-SUMMA**: the one-step-lookahead flat schedule
  with its split-phase broadcasts streamed in ``s`` pipeline segments,
  best of ``s = 1`` (bulk split-phase) and the registry's closed-form
  optimum ``s*`` (capped; see below).

Two crossovers live in the table:

* the **depth crossover** along the alpha/beta axis — latency-bound
  regimes pick ``s = 1`` (segments only add alphas), bandwidth-bound
  regimes pick ``s* > 1``;
* the **schedule margin** — where compute can hide communication the
  flat pipelined schedule beats the bulk hierarchy outright (the
  acceptance regime), and its lead grows with beta.

The pipeline depth is capped at :data:`MAX_SEGMENTS`: past ~p segments
the simulator's infinite-NIC wire model lets every in-flight segment
overlap, which flatters deep pipelines beyond what the closed forms
(or hardware) support.

Usage::

    python benchmarks/bench_ablation_pipeline.py            # full grid
    python benchmarks/bench_ablation_pipeline.py --quick    # CI smoke

Exit status is non-zero when no regime shows pipelined overlap-SUMMA
beating bulk HSUMMA, or when the depth crossover is missing — CI runs
``--quick`` as a gate.  Under pytest the same grid runs as a benchmark
and writes ``benchmarks/results/ablation_pipeline.txt``.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys

#: Hard cap on the enumerated pipeline depth (see module docstring).
MAX_SEGMENTS = 16

#: (n, p, alpha, beta, label); gamma fixed so the balanced points have
#: comparable per-step comm and compute.
GAMMA = 2e-9
FULL_GRID = [
    (512, 64, 1e-3, 1e-9, "latency-bound"),
    (512, 64, 1e-4, 1e-9, "balanced"),
    (2048, 64, 1e-5, 5e-9, "bandwidth-bound"),
    (512, 256, 1e-3, 1e-9, "latency-bound"),
    (2048, 256, 1e-4, 1e-9, "balanced"),
    (2048, 256, 1e-5, 5e-9, "bandwidth-bound"),
]
QUICK_GRID = [
    (512, 64, 1e-3, 1e-9, "latency-bound"),
    (512, 64, 1e-4, 1e-9, "balanced"),
    (1024, 64, 1e-5, 5e-9, "bandwidth-bound"),
]


def _point(n, p, alpha, beta):
    """One grid point: (hsumma_time, hsumma_alg, overlap_time, depth)."""
    from repro.core.hsumma import run_hsumma
    from repro.core.overlap import run_summa_overlap
    from repro.costs import optimal_pipeline_segments
    from repro.mpi.comm import CollectiveOptions
    from repro.network.model import HockneyParams
    from repro.payloads import PhantomArray

    s = math.isqrt(p)
    grid = (s, s)
    block = n // s
    while block > 64 or (n // s) % block:
        block //= 2
    params = HockneyParams(alpha, beta)
    A, B = PhantomArray((n, n)), PhantomArray((n, n))

    best_hs = None
    for alg in ("binomial", "vandegeijn"):
        _, sim = run_hsumma(
            A, B, grid=grid, groups=s, outer_block=block,
            options=CollectiveOptions(bcast=alg), params=params,
            gamma=GAMMA,
        )
        if best_hs is None or sim.total_time < best_hs[0]:
            best_hs = (sim.total_time, alg)

    m_bytes = (n // s) * block * 8
    s_opt = min(MAX_SEGMENTS,
                optimal_pipeline_segments(m_bytes, s, alpha, beta,
                                          "segmented"))
    best_ov = None
    for seg in sorted({1, s_opt}):
        _, sim = run_summa_overlap(A, B, grid=grid, block=block,
                                   params=params, gamma=GAMMA,
                                   bcast_segments=seg)
        if best_ov is None or sim.total_time < best_ov[0]:
            best_ov = (sim.total_time, seg)

    return best_hs[0], best_hs[1], best_ov[0], best_ov[1]


def sweep(points):
    rows = []
    for n, p, alpha, beta, label in points:
        t_hs, alg, t_ov, seg = _point(n, p, alpha, beta)
        rows.append({
            "n": n, "p": p, "alpha": alpha, "beta": beta, "label": label,
            "hsumma_s": t_hs, "hsumma_alg": alg,
            "overlap_s": t_ov, "depth": seg,
            "winner": "overlap" if t_ov < t_hs else "hsumma",
            "speedup": t_hs / t_ov if t_ov > 0 else float("inf"),
        })
    return rows


def render(rows):
    from repro.util.tables import format_table

    table = format_table(
        ["regime", "n", "p", "alpha", "beta", "hsumma_s", "overlap_s",
         "depth s", "winner", "speedup"],
        [[r["label"], r["n"], r["p"], f"{r['alpha']:.0e}",
          f"{r['beta']:.0e}", r["hsumma_s"], r["overlap_s"], r["depth"],
          r["winner"], round(r["speedup"], 2)] for r in rows],
        title=("Ablation — pipelined overlap-SUMMA vs bulk HSUMMA "
               f"(gamma={GAMMA:.0e}, depth capped at {MAX_SEGMENTS})"),
    )
    depths = sorted({r["depth"] for r in rows})
    return table + (
        "\n\ndepth crossover: chosen pipeline depths span "
        f"{depths} — latency regimes stay at s=1, bandwidth regimes "
        "climb to the closed-form optimum.\n"
    )


def check(rows):
    """The acceptance gates; returns a list of failure strings."""
    failures = []
    pipelined_wins = [r for r in rows
                      if r["winner"] == "overlap" and r["depth"] > 1]
    if not pipelined_wins:
        failures.append(
            "no (n, p, alpha/beta) regime shows pipelined (s > 1) "
            "overlap-SUMMA beating bulk-synchronous HSUMMA"
        )
    if not any(r["depth"] == 1 for r in rows):
        failures.append("no latency regime chose s = 1 (depth "
                        "crossover missing on the shallow side)")
    if not any(r["depth"] > 1 for r in rows):
        failures.append("no bandwidth regime chose s > 1 (depth "
                        "crossover missing on the deep side)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: p=64 column only")
    args = parser.parse_args(argv)
    rows = sweep(QUICK_GRID if args.quick else FULL_GRID)
    text = render(rows)
    print(text)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "ablation_pipeline.txt").write_text(text + "\n")
    failures = check(rows)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_pipeline_crossover(benchmark, record_output):
    from conftest import run_once

    rows = run_once(benchmark, sweep, FULL_GRID)
    record_output("ablation_pipeline", render(rows))
    assert not check(rows)


if __name__ == "__main__":
    sys.exit(main())
