"""Ablation: block-cyclic distribution (the paper's main future work).

The paper conjectures that the block-cyclic distribution lets the
communication be "better overlapped and parallelized".  We test the
conjecture's two halves under the Hockney model:

1. the *hierarchy still helps* per rotating pivot (HSUMMA-style
   two-phase broadcasts cut the cyclic variant's comm time); and
2. rotating roots + lookahead: measured against block distribution
   with the same lookahead.

Finding (recorded in EXPERIMENTS.md): half 1 reproduces; half 2 does
NOT materialise under a contention-free Hockney network — with
symmetric trees and unlimited injection, a stable root pipelines as
well as rotating roots.  The conjectured benefit needs a hot-root
bottleneck the paper's own model does not include.
"""

from conftest import run_once

from repro.core.cyclic import run_cyclic
from repro.core.overlap import run_summa_overlap
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")
N, GRID, NB = 512, (8, 8), 8
GAMMA = 2e-9


def run_variants():
    A, B = PhantomArray((N, N)), PhantomArray((N, N))
    kw = dict(params=PARAMS, options=VDG, gamma=GAMMA)
    out = {}
    _, out["cyclic flat"] = run_cyclic(A, B, grid=GRID, nb=NB, **kw)
    _, out["cyclic hierarchical"] = run_cyclic(
        A, B, grid=GRID, nb=NB, groups=(4, 4), **kw
    )
    _, out["cyclic + overlap"] = run_cyclic(
        A, B, grid=GRID, nb=NB, overlap=True, **kw
    )
    _, out["block + overlap"] = run_summa_overlap(
        A, B, grid=GRID, block=NB, **kw
    )
    return out


def test_block_cyclic(benchmark, record_output):
    sims = run_once(benchmark, run_variants)
    rows = [
        [name, sim.total_time, sim.comm_time] for name, sim in sims.items()
    ]
    text = format_table(
        ["variant", "total_s", "exposed_comm_s"],
        rows,
        title=(
            f"Ablation — block-cyclic distribution (p=64, n={N}, nb={NB}, "
            "vdg broadcast)"
        ),
    )
    record_output("ablation_cyclic", text)

    # Half 1 of the conjecture: the hierarchy helps the cyclic layout.
    assert (
        sims["cyclic hierarchical"].comm_time < sims["cyclic flat"].comm_time
    )
    # Overlap helps the cyclic layout too.
    assert (
        sims["cyclic + overlap"].total_time < sims["cyclic flat"].total_time
    )
    # Honest negative: under contention-free Hockney the rotating-root
    # cyclic schedule does not beat the block layout with the same
    # lookahead (the conjecture needs hot-root congestion).
    assert (
        sims["block + overlap"].total_time
        <= sims["cyclic + overlap"].total_time * 1.05
    )