"""Figure 10: exascale prediction — model time vs group count,
p = 2^20, n = 2^22, b = 256, alpha = 500 ns, 100 GB/s links.

Paper observation: HSUMMA's curve dips to roughly a third of SUMMA's
flat line, with the minimum at G = sqrt(p) = 1024.  Reproduction
criteria: minimum exactly at 1024, symmetric U-shape, endpoints equal
to SUMMA, a material win at the optimum.
"""

from conftest import run_once

from repro.experiments.figures import fig10


def test_fig10_exascale_prediction(benchmark, record_output):
    series = run_once(benchmark, fig10)
    best_g, best = series.min_of("hsumma_comm")
    summa = series.column("summa_comm")[0]
    lines = [
        series.to_table(
            "Figure 10 — exascale prediction, p=2^20, n=2^22, b=256 "
            "(model comm time, s)"
        ),
        "",
        f"SUMMA:  {summa:.3f} s (flat in G)",
        f"HSUMMA: {best:.3f} s at G={best_g} "
        f"-> {summa / best:.2f}x (paper's plot: ~3x at G=1024)",
    ]
    record_output("fig10", "\n".join(lines))

    hs = series.column("hsumma_comm")
    assert best_g == 1024
    assert summa / best > 1.5
    # Exact symmetry of the model curve: T(G) == T(p/G).
    for left, right in zip(hs, hs[::-1]):
        assert abs(left - right) < 1e-9 * summa
    # Endpoints equal SUMMA.
    assert abs(hs[0] - summa) < 1e-9 * summa
