"""Macro backend at BlueGene/P scale: a previously DES-only algorithm
(block-cyclic SUMMA) simulated at p=16384 in under a minute.

Before the backend split, every algorithm outside the SUMMA/HSUMMA
analytic step models could only run through the full discrete-event
simulation, whose per-message cost makes p=16384 runs take hours.  The
macro backend executes the *same* rank program — identical generators,
identical results — but satisfies each collective from a cost oracle,
so the wall time scales with the number of collective calls instead of
the number of point-to-point messages.

The number is trustworthy because the macro backend reproduces the DES
makespan exactly on homogeneous networks (see
tests/property/test_backend_equivalence.py); this file re-checks that
identity at a small scale before timing the large run.
"""

import time

import pytest

from repro.core.cyclic import run_cyclic
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

from conftest import run_once

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
GAMMA = 1e-10


def test_macro_equals_des_small_scale():
    """The identity that justifies trusting the p=16384 number."""
    n = 1024
    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    kwargs = dict(grid=(8, 8), nb=32, params=PARAMS, gamma=GAMMA)
    _, des = run_cyclic(A, B, **kwargs)
    _, macro = run_cyclic(A, B, backend="macro", **kwargs)
    assert macro.total_time == pytest.approx(des.total_time)
    assert macro.comm_time == pytest.approx(des.comm_time)
    assert macro.compute_time == pytest.approx(des.compute_time)


def test_macro_scale_cyclic_p16384(benchmark, record_output):
    n = 32768
    A, B = PhantomArray((n, n)), PhantomArray((n, n))

    def job():
        t0 = time.perf_counter()
        _, sim = run_cyclic(
            A, B, grid=(128, 128), nb=256, params=PARAMS, gamma=GAMMA,
            backend="macro",
        )
        return time.perf_counter() - t0, sim

    wall, sim = run_once(benchmark, job)
    lines = [
        "Macro backend at scale — block-cyclic SUMMA, p=16384 "
        "(128x128 grid), n=32768, nb=256",
        "",
        f"simulated: total {sim.total_time:.4f} s, "
        f"comm {sim.comm_time:.4f} s, compute {sim.compute_time:.4f} s",
        f"wall time: {wall:.1f} s "
        "(DES-only before the backend split: hours)",
    ]
    record_output("macro_scale", "\n".join(lines))

    # The headline claim: a previously DES-only algorithm at p=16384
    # inside a minute of wall time.
    assert wall < 60.0
    # Sanity on the simulated run itself.
    assert 0.0 < sim.comm_time < sim.total_time
    assert sim.compute_time > 0.0
