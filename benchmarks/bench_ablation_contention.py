"""Ablation: link contention on the torus — the effect beyond Hockney.

The paper's measured BG/P gains at p < 16384 (2.08x comm at 2048 cores)
exceed what its own contention-free Hockney model predicts (parity).
The physical explanation: SUMMA's grid-row broadcasts span entire torus
dimensions and share links, while HSUMMA's group-local traffic does
not.  We demonstrate this directionally with the full discrete-event
simulator *with link contention enabled* at a reduced scale: SUMMA's
comm time inflates more than HSUMMA's when contention is switched on.
"""

from conftest import run_once

from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.mpi.comm import CollectiveOptions
from repro.network.torus import Torus3D
from repro.payloads import PhantomArray
from repro.platforms.bluegene import BGP_PARAMS
from repro.util.tables import format_table

N = 1024
S = T = 8  # p = 64 on a 4x4x4 torus
BLOCK = 32
VDG = CollectiveOptions(bcast="vandegeijn")


def _net():
    return Torus3D((4, 4, 4), BGP_PARAMS, ranks_per_node=1)


def run_pair():
    A = PhantomArray((N, N))
    B = PhantomArray((N, N))
    out = {}
    for contention in (False, True):
        _, s_sim = run_summa(A, B, grid=(S, T), block=BLOCK,
                             network=_net(), options=VDG,
                             contention=contention)
        _, h_sim = run_hsumma(A, B, grid=(S, T), groups=8,
                              outer_block=BLOCK, network=_net(),
                              options=VDG, contention=contention)
        key = "contended" if contention else "free"
        out[key] = (s_sim.comm_time, h_sim.comm_time)
    return out


def test_contention_widens_the_gap(benchmark, record_output):
    results = run_once(benchmark, run_pair)
    rows = []
    for key, (s, h) in results.items():
        rows.append([key, s, h, s / h])
    text = format_table(
        ["links", "summa_comm_s", "hsumma_comm_s", "ratio"],
        rows,
        title=(
            f"Ablation — torus link contention (p=64 on 4x4x4, n={N}, "
            f"b=B={BLOCK}, G=8)"
        ),
    )
    record_output("ablation_contention", text)

    s_free, h_free = results["free"]
    s_cont, h_cont = results["contended"]
    # Contention slows both down...
    assert s_cont >= s_free
    assert h_cont >= h_free
    # ...but SUMMA relatively more: the ratio widens, pointing at the
    # mechanism behind the paper's larger-than-Hockney measured gains.
    assert s_cont / h_cont > s_free / h_free
