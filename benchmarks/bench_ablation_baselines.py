"""Ablation: HSUMMA against the classical algorithm field.

The paper compares only against SUMMA, arguing the others are ruled
out structurally (Cannon/Fox need square grids, 3D needs p^(1/3)
memory copies, 2.5D needs c copies).  Here we run all of them at an
equal-p point where each is applicable and report comm time and the
memory replication factor — reproducing the paper's qualitative
argument with numbers.
"""

from conftest import run_once

from repro.core.api import multiply
from repro.network.model import HockneyParams
from repro.mpi.comm import CollectiveOptions
from repro.payloads import PhantomArray
from repro.util.tables import format_table

N = 4096
P = 64  # 8x8 (square, so Cannon/Fox apply), 4^3 (3D), 4^2*4 (2.5D c=4)
PARAMS = HockneyParams(alpha=3e-6, beta=1e-9 / 8)
VDG = CollectiveOptions(bcast="vandegeijn")


def run_field():
    A = PhantomArray((N, N))
    B = PhantomArray((N, N))
    # Block 16 keeps alpha/beta above the threshold 2nb/p (2048 < 3000
    # elements) so HSUMMA's interior optimum exists, as on BG/P.
    runs = {
        "summa": dict(algorithm="summa", grid=(8, 8), block=16),
        "hsumma(G=8)": dict(algorithm="hsumma", grid=(8, 8), block=16,
                            groups=8),
        "cannon": dict(algorithm="cannon", grid=(8, 8)),
        "fox": dict(algorithm="fox", grid=(8, 8)),
        "3d": dict(algorithm="3d", nprocs=64),
        "2.5d(c=4)": dict(algorithm="2.5d", nprocs=64, replication=4),
    }
    replication = {
        "summa": 1, "hsumma(G=8)": 1, "cannon": 1, "fox": 1,
        "3d": 4,  # p^(1/3) copies
        "2.5d(c=4)": 4,
    }
    out = {}
    for name, kw in runs.items():
        r = multiply(A, B, params=PARAMS, options=VDG, **kw)
        out[name] = (r.comm_time, replication[name])
    return out


def test_baseline_field(benchmark, record_output):
    results = run_once(benchmark, run_field)
    rows = [[k, v[0], v[1]] for k, v in results.items()]
    text = format_table(
        ["algorithm", "comm_s", "memory copies"],
        rows,
        title=f"Ablation — algorithm field at p={P}, n={N} (BG/P params)",
    )
    record_output("ablation_baselines", text)

    # HSUMMA at its optimum beats plain SUMMA.
    assert results["hsumma(G=8)"][0] < results["summa"][0]
    # The replicating algorithms buy comm time with memory, as the
    # paper argues: they beat 2-D algorithms but need c>1 copies.
    assert results["3d"][0] < results["summa"][0]
    assert results["3d"][1] > 1
    assert results["2.5d(c=4)"][1] > 1
    # HSUMMA achieves its win with NO extra memory (the paper's point).
    assert results["hsumma(G=8)"][1] == 1
